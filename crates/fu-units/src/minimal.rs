//! The minimal functional-unit configuration (Figure 5 / thesis
//! Figure 2.16).
//!
//! "Essentially the minimal configuration of a functional unit … consists
//! of some combinational logic transforming a single input value to a
//! single output value … followed by an array of registers which is able
//! to buffer the resulting value of an operation until the connected write
//! arbiter acknowledges the write operation."
//!
//! Timing, with acknowledge forwarding **off** (the thesis's recommended
//! default): dispatch in cycle *t*, `data_ready` in *t+1*, acknowledge in
//! *t+1*, idle again in *t+2* — "able to accept an instruction every
//! second clock cycle". With forwarding **on**, the acknowledgement is
//! combinationally folded into `idle`, so a new dispatch can land in the
//! acknowledge cycle — one instruction per cycle, but "combinational
//! signals running through the functional units can significantly lengthen
//! the critical path of the entire coprocessor", which the unit's
//! [`FunctionalUnit::critical_path`] reflects. This trade-off is ablation
//! A1 of the reproduction.

use crate::kernel::{make_output, Kernel};
use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// Minimal-skeleton wrapper around a combinational kernel.
#[derive(Debug, Clone)]
pub struct MinimalFu<K: Kernel> {
    kernel: K,
    forward_ack: bool,
    /// Result computed this cycle, registered at the edge.
    staged: Option<FuOutput>,
    /// Registered result, visible to the write arbiter.
    out: Option<FuOutput>,
    /// Set when the arbiter acknowledged during this evaluate phase.
    acked_this_cycle: bool,
}

impl<K: Kernel> MinimalFu<K> {
    /// Wrap `kernel`; `forward_ack` enables the combinational
    /// acknowledge-forwarding option.
    pub fn new(kernel: K, forward_ack: bool) -> MinimalFu<K> {
        MinimalFu {
            kernel,
            forward_ack,
            staged: None,
            out: None,
            acked_this_cycle: false,
        }
    }

    /// Is acknowledge forwarding enabled?
    pub fn forwards_ack(&self) -> bool {
        self.forward_ack
    }

    /// The wrapped kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }
}

impl<K: Kernel> Clocked for MinimalFu<K> {
    fn commit(&mut self) {
        if let Some(v) = self.staged.take() {
            debug_assert!(self.out.is_none(), "result register overwritten");
            self.out = Some(v);
        }
        self.acked_this_cycle = false;
    }

    fn reset(&mut self) {
        self.staged = None;
        self.out = None;
        self.acked_this_cycle = false;
    }
}

impl<K: Kernel> FunctionalUnit for MinimalFu<K> {
    fn name(&self) -> &'static str {
        self.kernel.name()
    }

    fn func_code(&self) -> u8 {
        self.kernel.func_code()
    }

    fn aux_role(&self) -> AuxRole {
        self.kernel.aux_role()
    }

    fn can_dispatch(&self) -> bool {
        // Idle when no output is pending. Without forwarding, the idle
        // signal is registered: a unit acknowledged in this cycle only
        // reports idle from the next cycle (hence one instruction every
        // second cycle under continuous acknowledgement); with
        // forwarding the acknowledge is folded in combinationally.
        self.staged.is_none() && self.out.is_none() && (self.forward_ack || !self.acked_this_cycle)
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to busy minimal unit");
        let result = self.kernel.compute(&pkt);
        self.staged = Some(make_output(&pkt, result));
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        self.out.as_ref()
    }

    fn ack_output(&mut self) -> FuOutput {
        self.acked_this_cycle = true;
        self.out.take().expect("ack with no pending output")
    }

    fn is_idle(&self) -> bool {
        self.staged.is_none() && self.out.is_none()
    }

    fn wake_hint(&self) -> Option<u64> {
        // A staged result registers (and a fresh acknowledge clears) at
        // the very next edge; the unit is never quiet for longer.
        if self.out.is_some() {
            None
        } else {
            Some(1)
        }
    }

    fn variety_writes_data(&self, v: u8) -> bool {
        self.kernel.writes_data(v)
    }

    fn variety_writes_flags(&self, v: u8) -> bool {
        self.kernel.writes_flags(v)
    }

    fn variety_reads_flags(&self, v: u8) -> bool {
        self.kernel.reads_flags(v)
    }

    fn variety_reads_srcs(&self, v: u8) -> [bool; 3] {
        self.kernel.reads_srcs(v)
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        // Kernel logic + result registers (data, destination number,
        // ready flag), as in Figure 2.16.
        self.kernel.area() + AreaEstimate::register(self.kernel.word_bits() as u64 + 8 + 1)
    }

    fn critical_path(&self) -> CriticalPath {
        let base = self.kernel.critical_path();
        if self.forward_ack {
            // The acknowledge wire threads through the unit's idle logic
            // back into the dispatcher — a longer combinational path.
            base.then(CriticalPath::of(2))
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::{pkt, IdKernel};

    fn unit(forward: bool) -> MinimalFu<IdKernel> {
        MinimalFu::new(IdKernel { bits: 32 }, forward)
    }

    #[test]
    fn result_registered_one_cycle_after_dispatch() {
        let mut fu = unit(false);
        fu.dispatch(pkt(0, 42, 0, 32));
        assert!(fu.peek_output().is_none(), "output must be registered");
        fu.commit();
        let out = fu.peek_output().unwrap();
        assert_eq!(out.data.unwrap().1.as_u64(), 42);
    }

    #[test]
    fn without_forwarding_accepts_every_second_cycle() {
        // Simulate the arbiter acknowledging as soon as output appears.
        let mut fu = unit(false);
        let mut dispatched = 0u32;
        for _ in 0..10 {
            // arbiter phase
            if fu.peek_output().is_some() {
                fu.ack_output();
            }
            // dispatcher phase
            if fu.can_dispatch() {
                fu.dispatch(pkt(0, 1, 0, 32));
                dispatched += 1;
            }
            fu.commit();
        }
        assert_eq!(dispatched, 5, "one instruction every second cycle");
    }

    #[test]
    fn with_forwarding_accepts_every_cycle() {
        let mut fu = unit(true);
        let mut dispatched = 0u32;
        for _ in 0..10 {
            if fu.peek_output().is_some() {
                fu.ack_output();
            }
            if fu.can_dispatch() {
                fu.dispatch(pkt(0, 1, 0, 32));
                dispatched += 1;
            }
            fu.commit();
        }
        assert_eq!(dispatched, 10, "forwarding sustains one per cycle");
    }

    #[test]
    fn unacknowledged_output_blocks_dispatch() {
        let mut fu = unit(true);
        fu.dispatch(pkt(0, 1, 0, 32));
        fu.commit();
        // No ack: even with forwarding the unit is busy.
        assert!(!fu.can_dispatch());
        fu.commit();
        assert!(!fu.can_dispatch());
        assert!(fu.peek_output().is_some(), "result held until acknowledged");
    }

    #[test]
    fn forwarding_lengthens_critical_path() {
        assert!(unit(true).critical_path() > unit(false).critical_path());
    }

    #[test]
    fn reset_drops_everything() {
        let mut fu = unit(false);
        fu.dispatch(pkt(0, 1, 0, 32));
        fu.commit();
        fu.reset();
        assert!(fu.is_idle());
        assert!(fu.can_dispatch());
    }

    #[test]
    #[should_panic(expected = "dispatch to busy")]
    fn double_dispatch_panics() {
        let mut fu = unit(false);
        fu.dispatch(pkt(0, 1, 0, 32));
        fu.dispatch(pkt(0, 2, 0, 32));
    }
}
