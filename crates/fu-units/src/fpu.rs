//! A single-precision floating-point unit — the paper's opening example.
//!
//! "One way to run such programs faster is … hardware accelerators. One
//! example of this is to provide floating point operations in hardware,
//! rather than performing them in software." (§I)
//!
//! [`FpuKernel`] implements IEEE-754 binary32 add, subtract, multiply and
//! compare **in pure integer logic** — unpack, align, add/normalise,
//! round-to-nearest-even — exactly the datapath an FPGA implementation
//! synthesises, not a call into the host's FPU. Like many real FPGA
//! floating-point cores, the unit **flushes subnormals to zero** (FTZ) on
//! both inputs and outputs; everything else (±0, ±∞, NaN propagation,
//! rounding) is bit-exact against IEEE-754, which the property tests
//! check word-for-word against the host's hardware float unit.
//!
//! Deep mantissa datapaths want pipelining: wrap the kernel in
//! [`crate::PipelinedFu`] (see [`FpuKernel::recommended_unit`]).

use crate::kernel::{Kernel, KernelOutput};
use fu_isa::{Flags, Word};
use fu_rtm::protocol::DispatchPacket;
use rtl_sim::{AreaEstimate, CriticalPath};

/// Variety codes of the FPU.
pub mod ops {
    /// `d = a + b`
    pub const FADD: u8 = 0;
    /// `d = a - b`
    pub const FSUB: u8 = 1;
    /// `d = a * b`
    pub const FMUL: u8 = 2;
    /// flags of the comparison `a ? b` (C = a<b, Z = a==b, E = unordered)
    pub const FCMP: u8 = 3;
}

/// Default function code for the FPU.
pub const FPU_FUNC_CODE: u8 = 23;

const EXP_BITS: u32 = 8;
const MANT_BITS: u32 = 23;
const EXP_MASK: u32 = (1 << EXP_BITS) - 1;
const MANT_MASK: u32 = (1 << MANT_BITS) - 1;
const BIAS: i32 = 127;
const QNAN: u32 = 0x7fc0_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fp {
    Zero(bool), // sign
    Inf(bool),  // sign
    Nan,
    Num { sign: bool, exp: i32, mant: u32 }, // mant has the implicit bit set (bit 23)
}

fn unpack(bits: u32) -> Fp {
    let sign = bits >> 31 == 1;
    let exp = (bits >> MANT_BITS) & EXP_MASK;
    let mant = bits & MANT_MASK;
    match (exp, mant) {
        (0, _) => Fp::Zero(sign), // subnormals flush to zero (FTZ)
        (EXP_MASK, 0) => Fp::Inf(sign),
        (EXP_MASK, _) => Fp::Nan,
        _ => Fp::Num {
            sign,
            exp: exp as i32 - BIAS,
            mant: mant | (1 << MANT_BITS),
        },
    }
}

fn pack_zero(sign: bool) -> u32 {
    (sign as u32) << 31
}

fn pack_inf(sign: bool) -> u32 {
    ((sign as u32) << 31) | (EXP_MASK << MANT_BITS)
}

/// Round-to-nearest-even and pack. `mant` carries the value left-aligned
/// with 3 extra bits (guard, round, sticky) below the target LSB:
/// bit 26 = implicit one position, bits 2..0 = G/R/S.
fn round_and_pack(sign: bool, mut exp: i32, mut mant: u32) -> u32 {
    debug_assert!(mant >> 26 <= 1, "mantissa misaligned: {mant:#x}");
    // Round to nearest, ties to even, on the low 3 bits.
    let lsb = (mant >> 3) & 1;
    let grs = mant & 0b111;
    mant >>= 3;
    if grs > 0b100 || (grs == 0b100 && lsb == 1) {
        mant += 1;
        if mant >> (MANT_BITS + 1) == 1 {
            // Rounding overflowed into a new bit: renormalise.
            mant >>= 1;
            exp += 1;
        }
    }
    if mant == 0 {
        return pack_zero(sign);
    }
    debug_assert!(mant >> MANT_BITS == 1, "unnormalised after round");
    let biased = exp + BIAS;
    if biased >= EXP_MASK as i32 {
        return pack_inf(sign); // overflow
    }
    if biased <= 0 {
        return pack_zero(sign); // underflow: FTZ
    }
    ((sign as u32) << 31) | ((biased as u32) << MANT_BITS) | (mant & MANT_MASK)
}

/// Shift right collecting a sticky bit.
fn shift_right_sticky(v: u32, by: u32) -> u32 {
    if by == 0 {
        v
    } else if by >= 32 {
        (v != 0) as u32
    } else {
        let dropped = v & ((1 << by) - 1);
        (v >> by) | (dropped != 0) as u32
    }
}

/// IEEE-754 binary32 addition (FTZ, round-to-nearest-even).
pub fn fadd(a_bits: u32, b_bits: u32) -> u32 {
    match (unpack(a_bits), unpack(b_bits)) {
        (Fp::Nan, _) | (_, Fp::Nan) => QNAN,
        (Fp::Inf(sa), Fp::Inf(sb)) => {
            if sa == sb {
                pack_inf(sa)
            } else {
                QNAN // ∞ − ∞
            }
        }
        (Fp::Inf(s), _) => pack_inf(s),
        (_, Fp::Inf(s)) => pack_inf(s),
        (Fp::Zero(sa), Fp::Zero(sb)) => pack_zero(sa && sb), // +0 unless both −0
        (Fp::Zero(_), _) => {
            // b is a normal number; return it (with its subnormal inputs
            // already flushed by unpack).
            b_bits
        }
        (_, Fp::Zero(_)) => a_bits,
        (
            Fp::Num {
                sign: sa,
                exp: ea,
                mant: ma,
            },
            Fp::Num {
                sign: sb,
                exp: eb,
                mant: mb,
            },
        ) => {
            // Align: operate with 3 GRS bits below the mantissa.
            let (sx, ex, mx, sy, my, diff) = if (ea, ma) >= (eb, mb) {
                (sa, ea, ma << 3, sb, mb << 3, (ea - eb) as u32)
            } else {
                (sb, eb, mb << 3, sa, ma << 3, (eb - ea) as u32)
            };
            let my = shift_right_sticky(my, diff);
            if sx == sy {
                // Magnitude add; may carry into bit 27.
                let mut sum = mx + my;
                let mut exp = ex;
                if sum >> 27 == 1 {
                    sum = (sum >> 1) | (sum & 1); // keep sticky
                    exp += 1;
                }
                round_and_pack(sx, exp, sum)
            } else {
                // Magnitude subtract; mx >= my by construction.
                let mut dif = mx - my;
                if dif == 0 {
                    return pack_zero(false); // exact cancellation → +0
                }
                let mut exp = ex;
                // Normalise: shift left until bit 26 is the leading one.
                let lead = 31 - dif.leading_zeros();
                if lead > 26 {
                    unreachable!("difference cannot exceed the operands");
                }
                let shift = 26 - lead;
                dif <<= shift;
                exp -= shift as i32;
                round_and_pack(sx, exp, dif)
            }
        }
    }
}

/// IEEE-754 binary32 subtraction.
pub fn fsub(a_bits: u32, b_bits: u32) -> u32 {
    fadd(a_bits, b_bits ^ 0x8000_0000)
}

/// IEEE-754 binary32 multiplication (FTZ, round-to-nearest-even).
pub fn fmul(a_bits: u32, b_bits: u32) -> u32 {
    let sign = (a_bits ^ b_bits) >> 31 == 1;
    match (unpack(a_bits), unpack(b_bits)) {
        (Fp::Nan, _) | (_, Fp::Nan) => QNAN,
        (Fp::Inf(_), Fp::Zero(_)) | (Fp::Zero(_), Fp::Inf(_)) => QNAN, // ∞ × 0
        (Fp::Inf(_), _) | (_, Fp::Inf(_)) => pack_inf(sign),
        (Fp::Zero(_), _) | (_, Fp::Zero(_)) => pack_zero(sign),
        (
            Fp::Num {
                exp: ea, mant: ma, ..
            },
            Fp::Num {
                exp: eb, mant: mb, ..
            },
        ) => {
            // 24×24 → 48-bit product; leading one at bit 47 or 46.
            let prod = ma as u64 * mb as u64;
            let mut exp = ea + eb;
            // Reduce to 27 bits (1 + 23 + GRS) with sticky collection.
            let (top, shift) = if prod >> 47 == 1 {
                exp += 1;
                (prod >> 21, 21u32)
            } else {
                (prod >> 20, 20u32)
            };
            let sticky = (prod & ((1u64 << shift) - 1) != 0) as u64;
            round_and_pack(sign, exp, (top | sticky) as u32)
        }
    }
}

/// Comparison result flags: `(less, equal, unordered)`.
pub fn fcmp(a_bits: u32, b_bits: u32) -> (bool, bool, bool) {
    let (a, b) = (unpack(a_bits), unpack(b_bits));
    if matches!(a, Fp::Nan) || matches!(b, Fp::Nan) {
        return (false, false, true);
    }
    // Totally ordered via sign-magnitude → two's complement trick, after
    // FTZ canonicalisation (so −0 == +0 and subnormals == 0).
    let key = |f: Fp, bits: u32| -> i64 {
        let canon = match f {
            Fp::Zero(_) => 0u32,
            _ => bits,
        };
        let v = canon as i64;
        if canon >> 31 == 1 {
            -(v & 0x7fff_ffff)
        } else {
            v
        }
    };
    let ka = key(a, a_bits);
    let kb = key(b, b_bits);
    (ka < kb, ka == kb, false)
}

/// The FPU kernel.
#[derive(Debug, Clone)]
pub struct FpuKernel {
    word_bits: u32,
}

impl FpuKernel {
    /// An FPU for `word_bits`-wide registers (values in the low 32 bits).
    pub fn new(word_bits: u32) -> FpuKernel {
        let _ = Word::zero(word_bits);
        FpuKernel { word_bits }
    }

    /// The recommended wrapper: a 4-stage pipeline (unpack/align,
    /// add-multiply, normalise, round), as a synthesised core would use.
    pub fn recommended_unit(word_bits: u32) -> crate::PipelinedFu<FpuKernel> {
        crate::PipelinedFu::new(FpuKernel::new(word_bits), 4, 8)
    }
}

impl Kernel for FpuKernel {
    fn name(&self) -> &'static str {
        "fpu"
    }

    fn func_code(&self) -> u8 {
        FPU_FUNC_CODE
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let a = pkt.ops[0].as_u64() as u32;
        let b = pkt.ops[1].as_u64() as u32;
        match pkt.variety {
            ops::FCMP => {
                let (lt, eq, unordered) = fcmp(a, b);
                let mut flags = Flags::from_parts(lt, eq, lt, false);
                flags.set(Flags::ERROR, unordered);
                KernelOutput {
                    data: None,
                    data2: None,
                    flags: Some(flags),
                }
            }
            v => {
                let r = match v {
                    ops::FADD => fadd(a, b),
                    ops::FSUB => fsub(a, b),
                    ops::FMUL => fmul(a, b),
                    _ => QNAN,
                };
                let is_nan = (r >> MANT_BITS) & EXP_MASK == EXP_MASK && r & MANT_MASK != 0;
                let mut flags = Flags::from_parts(false, r & 0x7fff_ffff == 0, r >> 31 == 1, false);
                flags.set(Flags::ERROR, is_nan);
                KernelOutput {
                    data: Some(Word::from_u64(r as u64, self.word_bits)),
                    data2: None,
                    flags: Some(flags),
                }
            }
        }
    }

    fn writes_data(&self, variety: u8) -> bool {
        variety != ops::FCMP
    }

    fn area(&self) -> AreaEstimate {
        // Aligner barrel shifter + 27-bit adder + 24×24 multiplier array
        // + normaliser + rounding.
        AreaEstimate::mux2(27 * 5)
            + AreaEstimate::adder(27)
            + AreaEstimate {
                les: 24 * 24 / 4,
                ffs: 0,
                bram_bits: 0,
            }
            + AreaEstimate::mux2(27 * 5)
            + AreaEstimate::adder(24)
    }

    fn critical_path(&self) -> CriticalPath {
        // Unpipelined: aligner + adder/multiplier tree + normaliser.
        CriticalPath::of(5)
            .then(CriticalPath::tree(24, 2))
            .then(CriticalPath::adder(27))
            .then(CriticalPath::of(5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Host-FPU reference with FTZ applied to inputs and outputs.
    fn host_ftz(op: impl Fn(f32, f32) -> f32, a: u32, b: u32) -> u32 {
        let flush = |v: f32| {
            if v.is_subnormal() {
                0.0f32.copysign(v)
            } else {
                v
            }
        };
        let r = flush(op(flush(f32::from_bits(a)), flush(f32::from_bits(b))));
        r.to_bits()
    }

    fn assert_matches(op_name: &str, ours: u32, host: u32, a: u32, b: u32) {
        let ours_f = f32::from_bits(ours);
        let host_f = f32::from_bits(host);
        if host_f.is_nan() {
            assert!(
                ours_f.is_nan(),
                "{op_name}({a:#x},{b:#x}): expected NaN, got {ours:#x}"
            );
        } else {
            assert_eq!(
                ours, host,
                "{op_name}({a:#x},{b:#x}): ours {ours_f} ({ours:#x}) vs host {host_f} ({host:#x})"
            );
        }
    }

    #[test]
    fn add_simple_values() {
        for (a, b) in [
            (1.0f32, 2.0f32),
            (0.1, 0.2),
            (1e10, -1e10),
            (1.5e-38, 2.5e-38),
            (3.0, -1.999999),
            (1e30, 1e-30),
            (-0.0, 0.0),
            (123456.78, 0.0001),
        ] {
            assert_matches(
                "fadd",
                fadd(a.to_bits(), b.to_bits()),
                host_ftz(|x, y| x + y, a.to_bits(), b.to_bits()),
                a.to_bits(),
                b.to_bits(),
            );
        }
    }

    #[test]
    fn mul_simple_values() {
        for (a, b) in [
            (1.0f32, 2.0f32),
            (0.1, 0.2),
            (1e20, 1e20),   // overflow -> inf
            (1e-30, 1e-30), // underflow -> 0 (FTZ)
            (-3.5, 2.0),
            (1.000_000_1, 0.999_999_9),
        ] {
            assert_matches(
                "fmul",
                fmul(a.to_bits(), b.to_bits()),
                host_ftz(|x, y| x * y, a.to_bits(), b.to_bits()),
                a.to_bits(),
                b.to_bits(),
            );
        }
    }

    #[test]
    fn special_values() {
        let inf = f32::INFINITY.to_bits();
        let ninf = f32::NEG_INFINITY.to_bits();
        let nan = f32::NAN.to_bits();
        let zero = 0.0f32.to_bits();
        let nzero = (-0.0f32).to_bits();
        let one = 1.0f32.to_bits();
        // ∞ − ∞ and ∞ × 0 are NaN.
        assert!(f32::from_bits(fadd(inf, ninf)).is_nan());
        assert!(f32::from_bits(fmul(inf, zero)).is_nan());
        // NaN propagates.
        assert!(f32::from_bits(fadd(nan, one)).is_nan());
        assert!(f32::from_bits(fmul(one, nan)).is_nan());
        // ∞ arithmetic.
        assert_eq!(fadd(inf, one), inf);
        assert_eq!(fmul(ninf, one), ninf);
        // Signed zeros.
        assert_eq!(fadd(nzero, nzero), nzero);
        assert_eq!(fadd(nzero, zero), zero);
        assert_eq!(fmul(nzero, one), nzero);
        // x + (−x) = +0.
        assert_eq!(fadd(one, 1.0f32.to_bits() ^ 0x8000_0000), zero);
    }

    #[test]
    fn subnormals_flush_to_zero() {
        let sub = f32::from_bits(0x0000_0001); // smallest subnormal
        assert!(sub.is_subnormal());
        // Subnormal input treated as zero.
        assert_eq!(fadd(sub.to_bits(), 1.0f32.to_bits()), 1.0f32.to_bits());
        // Subnormal result flushed to (signed) zero.
        let tiny = 1.2e-38f32; // normal, near the bottom
        let r = fmul(tiny.to_bits(), 0.5f32.to_bits());
        assert_eq!(r & 0x7fff_ffff, 0, "expected ±0, got {:#x}", r);
    }

    #[test]
    fn compare_semantics() {
        let cases = [
            (1.0f32, 2.0f32, (true, false, false)),
            (2.0, 1.0, (false, false, false)),
            (5.5, 5.5, (false, true, false)),
            (-1.0, 1.0, (true, false, false)),
            (-2.0, -3.0, (false, false, false)),
            (0.0, -0.0, (false, true, false)),
            (f32::NEG_INFINITY, f32::MAX, (true, false, false)),
            (f32::NAN, 1.0, (false, false, true)),
        ];
        for (a, b, expect) in cases {
            assert_eq!(fcmp(a.to_bits(), b.to_bits()), expect, "{a} ? {b}");
        }
    }

    #[test]
    fn kernel_routes_operations() {
        use crate::kernel::testutil::pkt;
        let k = FpuKernel::new(32);
        let mut p = pkt(
            ops::FADD,
            1.5f32.to_bits() as u64,
            2.25f32.to_bits() as u64,
            32,
        );
        let out = k.compute(&p);
        assert_eq!(out.data.unwrap().as_u64() as u32, 3.75f32.to_bits());
        p.variety = ops::FSUB;
        let out = k.compute(&p);
        assert_eq!(out.data.unwrap().as_u64() as u32, (-0.75f32).to_bits());
        p.variety = ops::FCMP;
        let out = k.compute(&p);
        assert!(out.data.is_none());
        let f = out.flags.unwrap();
        assert!(f.carry(), "1.5 < 2.25 sets the less-than (carry) flag");
        assert!(!k.writes_data(ops::FCMP));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2048))]

        #[test]
        fn prop_fadd_bit_exact_vs_host(a: u32, b: u32) {
            let ours = fadd(a, b);
            let host = host_ftz(|x, y| x + y, a, b);
            let (of, hf) = (f32::from_bits(ours), f32::from_bits(host));
            if hf.is_nan() {
                prop_assert!(of.is_nan());
            } else {
                prop_assert_eq!(ours, host,
                    "fadd({:#x},{:#x}) = {:#x}, host {:#x}", a, b, ours, host);
            }
        }

        #[test]
        fn prop_fmul_bit_exact_vs_host(a: u32, b: u32) {
            let ours = fmul(a, b);
            let host = host_ftz(|x, y| x * y, a, b);
            let (of, hf) = (f32::from_bits(ours), f32::from_bits(host));
            if hf.is_nan() {
                prop_assert!(of.is_nan());
            } else {
                prop_assert_eq!(ours, host,
                    "fmul({:#x},{:#x}) = {:#x}, host {:#x}", a, b, ours, host);
            }
        }

        #[test]
        fn prop_fcmp_matches_partial_cmp(a: u32, b: u32) {
            let flush = |v: f32| if v.is_subnormal() { 0.0f32.copysign(v) } else { v };
            let (fa, fb) = (flush(f32::from_bits(a)), flush(f32::from_bits(b)));
            let (lt, eq, unordered) = fcmp(a, b);
            match fa.partial_cmp(&fb) {
                None => prop_assert!(unordered),
                Some(std::cmp::Ordering::Less) => prop_assert!(lt && !eq && !unordered),
                Some(std::cmp::Ordering::Equal) => prop_assert!(!lt && eq && !unordered),
                Some(std::cmp::Ordering::Greater) => prop_assert!(!lt && !eq && !unordered),
            }
        }

        #[test]
        fn prop_addition_commutes(a: u32, b: u32) {
            let x = fadd(a, b);
            let y = fadd(b, a);
            if f32::from_bits(x).is_nan() {
                prop_assert!(f32::from_bits(y).is_nan());
            } else {
                prop_assert_eq!(x, y);
            }
        }
    }
}
