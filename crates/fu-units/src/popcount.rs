//! A population-count unit — the examples' "user-defined functional unit".
//!
//! The paper's portability story is that a programmer brings their own
//! operation to the framework: "the interface framework allows several
//! functional units to be incorporated on the FPGA, and these units may
//! have different designs." Popcount is the demo unit: trivially small
//! (an adder tree over the word's bits), yet a real accelerator candidate
//! on processors without a native instruction — and the examples run it
//! unmodified across 32/64/96/128-bit framework configurations (E10).

use crate::kernel::{Kernel, KernelOutput};
use fu_isa::{funit_codes, Flags, Word};
use fu_rtm::protocol::DispatchPacket;
use rtl_sim::{AreaEstimate, CriticalPath};

/// The popcount kernel.
#[derive(Debug, Clone)]
pub struct PopcountKernel {
    word_bits: u32,
}

impl PopcountKernel {
    /// A popcount kernel for `word_bits`-wide registers.
    pub fn new(word_bits: u32) -> PopcountKernel {
        let _ = Word::zero(word_bits);
        PopcountKernel { word_bits }
    }
}

impl Kernel for PopcountKernel {
    fn name(&self) -> &'static str {
        "popcount"
    }

    fn func_code(&self) -> u8 {
        funit_codes::POPCOUNT
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let count = pkt.ops[0].popcount();
        let out = Word::from_u64(count as u64, self.word_bits);
        KernelOutput {
            data: Some(out),
            data2: None,
            flags: Some(Flags::from_parts(false, count == 0, false, false)),
        }
    }

    fn reads_srcs(&self, _variety: u8) -> [bool; 3] {
        [true, false, false]
    }

    fn area(&self) -> AreaEstimate {
        // A compressor tree: roughly one LE per input bit.
        AreaEstimate {
            les: self.word_bits as u64,
            ffs: 0,
            bram_bits: 0,
        }
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::tree(self.word_bits as u64, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_rtm::protocol::LockTicket;
    use proptest::prelude::*;

    fn pkt(v: u128, bits: u32) -> DispatchPacket {
        DispatchPacket {
            variety: 0,
            ops: [Word::from_u128(v, bits), Word::zero(bits), Word::zero(bits)],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: None,
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    #[test]
    fn counts_bits_at_every_width() {
        for bits in [32, 64, 96, 128] {
            let k = PopcountKernel::new(bits);
            let out = k.compute(&pkt(0b1011, bits));
            assert_eq!(out.data.unwrap().as_u64(), 3, "width {bits}");
        }
    }

    #[test]
    fn zero_sets_zero_flag() {
        let k = PopcountKernel::new(64);
        let out = k.compute(&pkt(0, 64));
        assert!(out.flags.unwrap().zero());
        assert!(out.data.unwrap().is_zero());
    }

    proptest! {
        #[test]
        fn prop_matches_count_ones(v: u128) {
            let k = PopcountKernel::new(128);
            let out = k.compute(&pkt(v, 128));
            prop_assert_eq!(out.data.unwrap().as_u64(), v.count_ones() as u64);
        }
    }
}
