//! `fu-units` — the functional-unit library.
//!
//! The paper leaves the internal structure of a functional unit to the
//! designer but documents "several frequently recurring patterns when
//! creating functional units" (thesis §2.3.4). This crate implements the
//! three published construction skeletons, generic over a combinational
//! [`kernel::Kernel`]:
//!
//! * [`minimal::MinimalFu`] — the *minimal configuration* (Figure 5 /
//!   thesis Figure 2.16): combinational logic followed by output
//!   registers. Accepts an instruction every second cycle, or every cycle
//!   when acknowledge forwarding is enabled ("this combinational forward
//!   mechanism … allows the functional unit to theoretically accept a new
//!   instruction every clock cycle", at the cost of critical-path length).
//! * [`fsm::FsmFu`] — the *area-optimised* skeleton (thesis Figure 2.18):
//!   an Idle/Execute/Send finite state machine for multi-cycle kernels.
//! * [`pipelined::PipelinedFu`] — the *performance-optimised* skeleton
//!   (thesis §2.3.4): a k-stage pipeline in front of result FIFOs; the
//!   unit "becomes only busy towards the dispatcher if the FIFO buffers
//!   contained in the functional unit are full".
//!
//! On top of the skeletons, the crate provides the case-study units:
//!
//! * [`arith::ArithKernel`] — the arithmetic unit of Table 3.1
//!   (ADD/ADC/SUB/SBB/INC/DEC/NEG/CMP/CMPB via six variety bits);
//! * [`logic::LogicKernel`] — the logic unit of Table 3.2 (truth-table
//!   varieties);
//! * [`shift::ShiftKernel`] — a shift/rotate unit;
//! * [`mul::MulKernel`] — a widening multiplier that exercises the
//!   two-result path and the pipelined skeleton;
//! * [`popcount::PopcountKernel`] — a deliberately small "user-defined"
//!   unit used by the examples to demonstrate the framework's portability
//!   story.

pub mod arith;
pub mod clockdomain;
pub mod crc;
pub mod div;
pub mod fpu;
pub mod fsm;
pub mod kernel;
pub mod logic;
pub mod minimal;
pub mod mul;
pub mod pipelined;
pub mod popcount;
pub mod shift;
pub mod stateful;

pub use arith::ArithKernel;
pub use clockdomain::ClockDomainFu;
pub use crc::CrcKernel;
pub use div::DivKernel;
pub use fpu::FpuKernel;
pub use fsm::FsmFu;
pub use kernel::{Kernel, KernelOutput};
pub use logic::LogicKernel;
pub use minimal::MinimalFu;
pub use mul::MulKernel;
pub use pipelined::PipelinedFu;
pub use popcount::PopcountKernel;
pub use shift::ShiftKernel;
pub use stateful::{CamFu, HistogramFu, PrngFu};

use fu_rtm::FunctionalUnit;

/// The standard stateless-unit complement used by the examples and
/// benches: arithmetic + logic + shift (minimal skeletons), multiplier
/// (pipelined) and popcount.
pub fn standard_units(word_bits: u32) -> Vec<Box<dyn FunctionalUnit>> {
    vec![
        Box::new(MinimalFu::new(ArithKernel::new(word_bits), false)),
        Box::new(MinimalFu::new(LogicKernel::new(word_bits), false)),
        Box::new(MinimalFu::new(ShiftKernel::new(word_bits), false)),
        Box::new(PipelinedFu::new(MulKernel::new(word_bits), 3, 8)),
        Box::new(MinimalFu::new(PopcountKernel::new(word_bits), false)),
        Box::new(DivKernel::recommended_unit(word_bits)),
    ]
}
