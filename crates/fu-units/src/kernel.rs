//! The combinational kernel abstraction shared by the construction
//! skeletons.
//!
//! A [`Kernel`] is the "black box circuit" of Figure 5 — the pure
//! combinational function a unit computes — together with the static
//! decode facts the framework needs (which varieties write data or flags,
//! which operands are read). Skeletons wrap a kernel with timing and
//! protocol behaviour; the same kernel can be instantiated minimal, FSM or
//! pipelined, which is exactly the reuse story the thesis tells.

use fu_isa::{Flags, Word};
use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput};
use rtl_sim::{AreaEstimate, CriticalPath};

/// Results of one kernel evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelOutput {
    /// Data result for the first destination register.
    pub data: Option<Word>,
    /// Data result for the second destination register (units whose
    /// [`AuxRole`] is [`AuxRole::SecondDest`]).
    pub data2: Option<Word>,
    /// Output flag vector.
    pub flags: Option<Flags>,
}

/// A combinational compute kernel.
///
/// `Send` for the same reason as `FunctionalUnit`: the farm migrates whole
/// coprocessor shards across worker threads, and a kernel rides inside its
/// wrapping skeleton unit.
pub trait Kernel: Clone + Send + 'static {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Function code the wrapping unit answers to.
    fn func_code(&self) -> u8;

    /// Interpretation of the instruction's aux field.
    fn aux_role(&self) -> AuxRole {
        AuxRole::Unused
    }

    /// Register word size this kernel is instantiated for.
    fn word_bits(&self) -> u32;

    /// Evaluate the combinational function.
    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput;

    /// Does this variety produce a data result?
    fn writes_data(&self, _variety: u8) -> bool {
        true
    }

    /// Does this variety produce flags?
    fn writes_flags(&self, _variety: u8) -> bool {
        true
    }

    /// Does this variety consume the source flag register?
    fn reads_flags(&self, _variety: u8) -> bool {
        false
    }

    /// Which source-register fields this variety reads.
    fn reads_srcs(&self, _variety: u8) -> [bool; 3] {
        [true, true, false]
    }

    /// Area of the combinational logic.
    fn area(&self) -> AreaEstimate;

    /// Depth of the combinational logic.
    fn critical_path(&self) -> CriticalPath;
}

/// Assemble a [`FuOutput`] from a kernel result and the originating
/// packet (shared by all skeletons).
pub fn make_output(pkt: &DispatchPacket, out: KernelOutput) -> FuOutput {
    FuOutput {
        data: out.data.map(|v| (pkt.dst_reg, v)),
        data2: out.data2.and_then(|v| pkt.dst2_reg.map(|r| (r, v))),
        flags: out.flags.map(|f| (pkt.dst_flag, f)),
        ticket: pkt.ticket,
        seq: pkt.seq,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for skeleton and kernel tests.
    use super::*;
    use fu_rtm::protocol::LockTicket;

    /// A dispatch packet with the given operands and plain destinations.
    pub fn pkt(variety: u8, a: u64, b: u64, bits: u32) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [
                Word::from_u64(a, bits),
                Word::from_u64(b, bits),
                Word::zero(bits),
            ],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: Some(2),
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::new(Some(1), None, Some(0)),
            seq: 0,
        }
    }

    /// A trivial identity kernel for skeleton tests: `dst = src1`, zero
    /// flag only.
    #[derive(Clone)]
    pub struct IdKernel {
        pub bits: u32,
    }

    impl Kernel for IdKernel {
        fn name(&self) -> &'static str {
            "identity"
        }
        fn func_code(&self) -> u8 {
            7
        }
        fn word_bits(&self) -> u32 {
            self.bits
        }
        fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
            KernelOutput {
                data: Some(pkt.ops[0]),
                data2: None,
                flags: Some(Flags::from_parts(false, pkt.ops[0].is_zero(), false, false)),
            }
        }
        fn reads_srcs(&self, _v: u8) -> [bool; 3] {
            [true, false, false]
        }
        fn area(&self) -> AreaEstimate {
            AreaEstimate::ZERO
        }
        fn critical_path(&self) -> CriticalPath {
            CriticalPath::of(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn make_output_routes_destinations() {
        let p = pkt(0, 5, 0, 32);
        let out = make_output(
            &p,
            KernelOutput {
                data: Some(Word::from_u64(9, 32)),
                data2: Some(Word::from_u64(8, 32)),
                flags: Some(Flags::CARRY),
            },
        );
        assert_eq!(out.data, Some((1, Word::from_u64(9, 32))));
        assert_eq!(out.data2, Some((2, Word::from_u64(8, 32))));
        assert_eq!(out.flags, Some((0, Flags::CARRY)));
        assert_eq!(out.ticket, p.ticket);
    }

    #[test]
    fn make_output_drops_data2_without_second_dest() {
        let mut p = pkt(0, 5, 0, 32);
        p.dst2_reg = None;
        let out = make_output(
            &p,
            KernelOutput {
                data: None,
                data2: Some(Word::from_u64(8, 32)),
                flags: None,
            },
        );
        assert_eq!(out.data, None);
        assert_eq!(out.data2, None);
        assert_eq!(out.flags, None);
    }
}
