//! The area-optimised FSM skeleton (thesis Figure 2.18).
//!
//! For kernels that need several cycles but where a full pipeline would
//! waste area, the thesis gives a finite-state-machine skeleton with
//! states *Idle → Execute → Send-Data/Send-Flags → Idle* ("if the reset
//! signal is asserted the FSM moves to state Idle regardless of its
//! current state").
//!
//! [`FsmFu`] reproduces that shape: a configurable number of execute
//! cycles, followed by one send state per produced result element (data,
//! second data, flags are delivered to the write arbiter together, but
//! each extra element costs one additional cycle of the FSM walking its
//! send states before `data_ready` is asserted — the serialisation the
//! figure's Send-Data-1/2/Flags chain implies).

use crate::kernel::{make_output, Kernel};
use fu_rtm::protocol::{AuxRole, DispatchPacket, FuOutput, FunctionalUnit};
use rtl_sim::{AreaEstimate, Clocked, CriticalPath};

/// FSM states (exposed for tests and traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// Waiting for a dispatch.
    Idle,
    /// Kernel computing; the counter holds remaining cycles.
    Execute(u32),
    /// Walking the send chain; the counter holds remaining send states.
    Send(u32),
    /// `data_ready` asserted, waiting for the write arbiter.
    Output,
}

/// FSM-skeleton wrapper around a combinational kernel.
#[derive(Debug, Clone)]
pub struct FsmFu<K: Kernel> {
    kernel: K,
    exec_cycles: u32,
    state: FsmState,
    next_state: Option<FsmState>,
    result: Option<FuOutput>,
}

impl<K: Kernel> FsmFu<K> {
    /// Wrap `kernel` with an `exec_cycles`-cycle execute phase
    /// (`exec_cycles >= 1`).
    pub fn new(kernel: K, exec_cycles: u32) -> FsmFu<K> {
        assert!(exec_cycles >= 1, "execute phase needs at least one cycle");
        FsmFu {
            kernel,
            exec_cycles,
            state: FsmState::Idle,
            next_state: None,
            result: None,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    fn send_states(out: &FuOutput) -> u32 {
        // One send state per result element beyond the first.
        let elements =
            out.data.is_some() as u32 + out.data2.is_some() as u32 + out.flags.is_some() as u32;
        elements.saturating_sub(1)
    }
}

impl<K: Kernel> Clocked for FsmFu<K> {
    fn commit(&mut self) {
        if let Some(s) = self.next_state.take() {
            self.state = s;
            return;
        }
        self.state = match self.state {
            FsmState::Idle => FsmState::Idle,
            FsmState::Execute(1) => {
                let sends = Self::send_states(self.result.as_ref().expect("result computed"));
                if sends == 0 {
                    FsmState::Output
                } else {
                    FsmState::Send(sends)
                }
            }
            FsmState::Execute(n) => FsmState::Execute(n - 1),
            FsmState::Send(1) => FsmState::Output,
            FsmState::Send(n) => FsmState::Send(n - 1),
            FsmState::Output => FsmState::Output,
        };
    }

    fn reset(&mut self) {
        // "If the reset signal is asserted the FSM moves to state Idle
        // regardless of its current state."
        self.state = FsmState::Idle;
        self.next_state = None;
        self.result = None;
    }
}

impl<K: Kernel> FunctionalUnit for FsmFu<K> {
    fn name(&self) -> &'static str {
        self.kernel.name()
    }

    fn func_code(&self) -> u8 {
        self.kernel.func_code()
    }

    fn aux_role(&self) -> AuxRole {
        self.kernel.aux_role()
    }

    fn can_dispatch(&self) -> bool {
        self.state == FsmState::Idle && self.next_state.is_none()
    }

    fn dispatch(&mut self, pkt: DispatchPacket) {
        assert!(self.can_dispatch(), "dispatch to busy FSM unit");
        // The kernel result is computed up front in the simulation; the
        // FSM only models *when* it becomes visible.
        let result = self.kernel.compute(&pkt);
        self.result = Some(make_output(&pkt, result));
        self.next_state = Some(FsmState::Execute(self.exec_cycles));
    }

    fn peek_output(&self) -> Option<&FuOutput> {
        (self.state == FsmState::Output)
            .then_some(self.result.as_ref())
            .flatten()
    }

    fn ack_output(&mut self) -> FuOutput {
        assert_eq!(self.state, FsmState::Output, "ack outside Output state");
        self.next_state = Some(FsmState::Idle);
        self.result.take().expect("result present in Output state")
    }

    fn is_idle(&self) -> bool {
        self.state == FsmState::Idle && self.next_state.is_none() && self.result.is_none()
    }

    fn wake_hint(&self) -> Option<u64> {
        // The FSM walk is fully deterministic once dispatched: the
        // output appears after the remaining execute cycles plus the
        // send chain, so the distance to `Output` is exact.
        let sends = self
            .result
            .as_ref()
            .map_or(0, |o| u64::from(Self::send_states(o)));
        match (self.next_state, self.state) {
            // Freshly dispatched: one edge into Execute, then the walk.
            (Some(FsmState::Execute(e)), _) => Some(1 + u64::from(e) + sends),
            // Freshly acknowledged (or any other forced transition): one
            // edge to settle.
            (Some(_), _) => Some(1),
            (None, FsmState::Execute(n)) => Some(u64::from(n) + sends),
            (None, FsmState::Send(n)) => Some(u64::from(n)),
            (None, FsmState::Idle) => Some(1),
            // Output pending: the scheduler is pinned regardless.
            (None, FsmState::Output) => None,
        }
    }

    fn variety_writes_data(&self, v: u8) -> bool {
        self.kernel.writes_data(v)
    }

    fn variety_writes_flags(&self, v: u8) -> bool {
        self.kernel.writes_flags(v)
    }

    fn variety_reads_flags(&self, v: u8) -> bool {
        self.kernel.reads_flags(v)
    }

    fn variety_reads_srcs(&self, v: u8) -> [bool; 3] {
        self.kernel.reads_srcs(v)
    }

    fn clone_unit(&self) -> Option<Box<dyn FunctionalUnit>> {
        Some(Box::new(self.clone()))
    }

    fn area(&self) -> AreaEstimate {
        // Kernel + state register + result buffer; the FSM trades control
        // area against the pipelined skeleton's FIFOs.
        self.kernel.area()
            + AreaEstimate::register(self.kernel.word_bits() as u64 + 8 + 3)
            + AreaEstimate {
                les: 12,
                ffs: 0,
                bram_bits: 0,
            }
    }

    fn critical_path(&self) -> CriticalPath {
        // The kernel may be spread across execute cycles; the per-cycle
        // depth is the kernel depth divided by the execute count (at
        // least the FSM logic itself).
        let per_cycle = self
            .kernel
            .critical_path()
            .levels
            .div_ceil(self.exec_cycles as u64);
        CriticalPath::of(per_cycle.max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::{pkt, IdKernel};

    fn unit(exec: u32) -> FsmFu<IdKernel> {
        FsmFu::new(IdKernel { bits: 32 }, exec)
    }

    #[test]
    fn walks_idle_execute_output_idle() {
        let mut fu = unit(2);
        assert_eq!(fu.state(), FsmState::Idle);
        fu.dispatch(pkt(0, 9, 0, 32));
        fu.commit();
        assert_eq!(fu.state(), FsmState::Execute(2));
        fu.commit();
        assert_eq!(fu.state(), FsmState::Execute(1));
        fu.commit();
        // IdKernel produces data + flags = 2 elements -> one send state.
        assert_eq!(fu.state(), FsmState::Send(1));
        assert!(fu.peek_output().is_none());
        fu.commit();
        assert_eq!(fu.state(), FsmState::Output);
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap().1.as_u64(), 9);
        fu.commit();
        assert_eq!(fu.state(), FsmState::Idle);
        assert!(fu.is_idle());
    }

    #[test]
    fn output_waits_for_acknowledge() {
        let mut fu = unit(1);
        fu.dispatch(pkt(0, 1, 0, 32));
        fu.commit(); // Execute(1)
        fu.commit(); // Send(1)
        fu.commit(); // Output
        assert_eq!(fu.state(), FsmState::Output);
        for _ in 0..3 {
            fu.commit();
            assert_eq!(fu.state(), FsmState::Output, "holds until acked");
        }
        fu.ack_output();
        fu.commit();
        assert!(fu.is_idle());
    }

    #[test]
    fn busy_during_execution() {
        let mut fu = unit(3);
        fu.dispatch(pkt(0, 1, 0, 32));
        assert!(!fu.can_dispatch());
        for _ in 0..3 {
            fu.commit();
            assert!(!fu.can_dispatch());
        }
    }

    #[test]
    fn reset_from_any_state_returns_to_idle() {
        let mut fu = unit(2);
        fu.dispatch(pkt(0, 1, 0, 32));
        fu.commit();
        fu.commit();
        fu.reset();
        assert_eq!(fu.state(), FsmState::Idle);
        assert!(fu.is_idle());
        assert!(fu.can_dispatch());
    }

    #[test]
    #[should_panic(expected = "ack outside Output")]
    fn ack_outside_output_panics() {
        let mut fu = unit(1);
        fu.dispatch(pkt(0, 1, 0, 32));
        fu.ack_output();
    }

    #[test]
    fn longer_execute_lowers_per_cycle_depth() {
        // Spreading a deep kernel across more cycles shortens the
        // per-cycle critical path (the area/speed dial the FSM offers).
        #[derive(Clone)]
        struct DeepKernel;
        impl Kernel for DeepKernel {
            fn name(&self) -> &'static str {
                "deep"
            }
            fn func_code(&self) -> u8 {
                9
            }
            fn word_bits(&self) -> u32 {
                32
            }
            fn compute(&self, _p: &DispatchPacket) -> crate::kernel::KernelOutput {
                crate::kernel::KernelOutput::default()
            }
            fn area(&self) -> AreaEstimate {
                AreaEstimate::ZERO
            }
            fn critical_path(&self) -> CriticalPath {
                CriticalPath::of(12)
            }
        }
        let shallow = FsmFu::new(DeepKernel, 1).critical_path();
        let deep = FsmFu::new(DeepKernel, 4).critical_path();
        assert!(deep < shallow);
    }
}
