//! A widening multiplier (extension FU exercising the two-result path).
//!
//! The framework allows "up to two results … loaded into the register
//! file"; a widening multiply is the canonical consumer: the product of
//! two w-bit words is 2w bits, delivered as a low half (destination
//! register #1) and a high half (the aux field as second destination).
//! Multiplier arrays are deep, so this kernel is meant for the
//! [`crate::PipelinedFu`] skeleton.

use crate::kernel::{Kernel, KernelOutput};
use fu_isa::{funit_codes, Flags, Word};
use fu_rtm::protocol::{AuxRole, DispatchPacket};
use rtl_sim::{AreaEstimate, CriticalPath};

/// Variety bit: only the low half is produced (single-destination form).
pub const MUL_LOW_ONLY: u8 = 1 << 0;

/// The widening-multiplier kernel.
#[derive(Debug, Clone)]
pub struct MulKernel {
    word_bits: u32,
}

impl MulKernel {
    /// A multiplier kernel for `word_bits`-wide registers.
    pub fn new(word_bits: u32) -> MulKernel {
        let _ = Word::zero(word_bits);
        MulKernel { word_bits }
    }

    fn widening_mul(&self, a: &Word, b: &Word) -> (Word, Word) {
        // Schoolbook limb multiplication, exact for up to 128×128 bits.
        let n = a.n_limbs();
        let mut acc = vec![0u64; 2 * n + 1];
        for (i, &x) in a.limbs().iter().enumerate() {
            for (j, &y) in b.limbs().iter().enumerate() {
                let p = x as u64 * y as u64;
                let k = i + j;
                let lo = acc[k] + (p & 0xffff_ffff);
                acc[k] = lo & 0xffff_ffff;
                let hi = acc[k + 1] + (p >> 32) + (lo >> 32);
                acc[k + 1] = hi & 0xffff_ffff;
                acc[k + 2] += hi >> 32;
            }
        }
        let limbs: Vec<u32> = acc.iter().map(|&l| l as u32).collect();
        let lo = Word::from_limbs(&limbs[..n]);
        let hi = Word::from_limbs(&limbs[n..2 * n]);
        (lo, hi)
    }
}

impl Kernel for MulKernel {
    fn name(&self) -> &'static str {
        "mul"
    }

    fn func_code(&self) -> u8 {
        funit_codes::MUL
    }

    fn aux_role(&self) -> AuxRole {
        AuxRole::SecondDest
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let (lo, hi) = self.widening_mul(&pkt.ops[0], &pkt.ops[1]);
        let low_only = pkt.variety & MUL_LOW_ONLY != 0;
        let flags = Flags::from_parts(
            // Carry doubles as "high half non-zero" (the product did not
            // fit one word), the conventional unsigned-overflow signal.
            !hi.is_zero(),
            lo.is_zero() && hi.is_zero(),
            lo.msb(),
            !hi.is_zero(),
        );
        KernelOutput {
            data: Some(lo),
            data2: (!low_only).then_some(hi),
            flags: Some(flags),
        }
    }

    fn area(&self) -> AreaEstimate {
        // A w×w array multiplier ≈ w partial-product rows.
        let w = self.word_bits as u64;
        AreaEstimate {
            les: w * w / 4,
            ffs: 0,
            bram_bits: 0,
        } + AreaEstimate::adder(2 * w)
    }

    fn critical_path(&self) -> CriticalPath {
        // Partial-product reduction tree depth.
        CriticalPath::tree(self.word_bits as u64, 2)
            .then(CriticalPath::adder(2 * self.word_bits as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipelined::PipelinedFu;
    use fu_rtm::protocol::{FunctionalUnit, LockTicket};
    use proptest::prelude::*;
    use rtl_sim::Clocked;

    fn pkt(a: u64, b: u64, variety: u8) -> DispatchPacket {
        DispatchPacket {
            variety,
            ops: [Word::from_u64(a, 32), Word::from_u64(b, 32), Word::zero(32)],
            flags_in: Flags::NONE,
            dst_reg: 1,
            dst2_reg: Some(2),
            dst_flag: 0,
            imm8: 0,
            ticket: LockTicket::default(),
            seq: 0,
        }
    }

    #[test]
    fn small_product() {
        let k = MulKernel::new(32);
        let out = k.compute(&pkt(6, 7, 0));
        assert_eq!(out.data.unwrap().as_u64(), 42);
        assert!(out.data2.unwrap().is_zero());
        assert!(!out.flags.unwrap().carry());
    }

    #[test]
    fn wide_product_splits_halves() {
        let k = MulKernel::new(32);
        let out = k.compute(&pkt(0xffff_ffff, 0xffff_ffff, 0));
        let expect = 0xffff_ffffu64 * 0xffff_ffff;
        assert_eq!(out.data.unwrap().as_u64(), expect & 0xffff_ffff);
        assert_eq!(out.data2.unwrap().as_u64(), expect >> 32);
        assert!(out.flags.unwrap().carry(), "product overflowed one word");
    }

    #[test]
    fn low_only_variety_suppresses_second_result() {
        let k = MulKernel::new(32);
        let out = k.compute(&pkt(1 << 20, 1 << 20, MUL_LOW_ONLY));
        assert!(out.data2.is_none());
    }

    #[test]
    fn through_pipelined_skeleton() {
        let mut fu = PipelinedFu::new(MulKernel::new(32), 3, 8);
        assert_eq!(fu.aux_role(), AuxRole::SecondDest);
        fu.dispatch(pkt(1000, 2000, 0));
        for _ in 0..3 {
            fu.commit();
        }
        let out = fu.ack_output();
        assert_eq!(out.data.unwrap(), (1, Word::from_u64(2_000_000, 32)));
        assert_eq!(out.data2.unwrap(), (2, Word::from_u64(0, 32)));
    }

    proptest! {
        #[test]
        fn prop_matches_u64_multiplication(a: u32, b: u32) {
            let k = MulKernel::new(32);
            let out = k.compute(&pkt(a as u64, b as u64, 0));
            let expect = a as u64 * b as u64;
            prop_assert_eq!(out.data.unwrap().as_u64(), expect & 0xffff_ffff);
            prop_assert_eq!(out.data2.unwrap().as_u64(), expect >> 32);
        }

        #[test]
        fn prop_matches_u128_multiplication(a: u64, b: u64) {
            let k = MulKernel::new(64);
            let p = DispatchPacket {
                variety: 0,
                ops: [Word::from_u64(a, 64), Word::from_u64(b, 64), Word::zero(64)],
                flags_in: Flags::NONE,
                dst_reg: 1,
                dst2_reg: Some(2),
                dst_flag: 0,
                imm8: 0,
                ticket: LockTicket::default(),
                seq: 0,
            };
            let out = k.compute(&p);
            let expect = a as u128 * b as u128;
            prop_assert_eq!(out.data.unwrap().as_u128(), expect & 0xffff_ffff_ffff_ffff);
            prop_assert_eq!(out.data2.unwrap().as_u128(), expect >> 64);
        }
    }
}
