//! A minimal, dependency-free subset of the [`criterion`] benchmarking
//! API, vendored so the workspace's `harness = false` benches build and
//! run without network access to crates.io.
//!
//! Each benchmark is timed with `std::time::Instant` over an adaptively
//! chosen iteration count and reported as mean wall-clock time per
//! iteration (plus derived throughput when set). There is no warm-up
//! phase beyond the calibration pass, no outlier analysis, and no saved
//! baselines — swap the workspace dependency back to the registry crate
//! for those.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target wall-clock budget per benchmark (split across samples).
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let summary = run_bench(self.sample_size, self.measurement_time, f);
        report(name, &summary, None);
        self
    }

    /// Called by `criterion_main!` after all groups; a no-op here.
    pub fn final_summary(&self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter-only id (`BenchmarkId::from_parameter(n)`).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Units-of-work declaration used to derive a rate from elapsed time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare how much work one iteration performs; subsequent benches
    /// in this group report a rate alongside the time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let summary = run_bench(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        let label = format!("{}/{}", self.name, id.into_label());
        report(&label, &summary, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Anything usable as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label()
    }
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, executing it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Summary {
    mean: Duration,
    min: Duration,
    max: Duration,
}

fn run_bench<F>(sample_size: usize, measurement_time: Duration, mut f: F) -> Summary
where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count that makes one sample take a
    // measurable slice of the budget.
    let mut iters: u64 = 1;
    let per_sample = measurement_time / sample_size as u32;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample.min(Duration::from_millis(50)) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / iters as u32);
    }
    let total: Duration = per_iter.iter().sum();
    Summary {
        mean: total / sample_size as u32,
        min: *per_iter.iter().min().unwrap(),
        max: *per_iter.iter().max().unwrap(),
    }
}

fn report(label: &str, s: &Summary, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !s.mean.is_zero() => {
            format!("  {:>12.0} elem/s", n as f64 / s.mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if !s.mean.is_zero() => {
            format!("  {:>12.0} B/s", n as f64 / s.mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} time: [{} {} {}]{rate}",
        fmt_duration(s.min),
        fmt_duration(s.mean),
        fmt_duration(s.max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

/// Collect benchmark functions under one name, mirroring the registry
/// macro's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
