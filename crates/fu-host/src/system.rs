//! The full-system co-simulation: host queue ↔ link ↔ coprocessor.
//!
//! One [`System::step`] advances the whole arrangement by one FPGA clock
//! cycle: host-bound frames drain from the device, device-bound frames
//! enter the coprocessor's receive FIFO (with link latency and bandwidth
//! applied in both directions), and the coprocessor itself is clocked.

use std::collections::VecDeque;

use crate::link::{FaultModel, Link, LinkModel, LinkStats};
use fu_isa::msg::{DevDeframer, ErrorCode};
use fu_isa::transport::{Endpoint, TransportConfig};
use fu_isa::{DevMsg, HostMsg};
use fu_rtm::{
    ActivityMode, CoprocConfig, CoprocSnapshot, Coprocessor, FunctionalUnit, QuietVerdict,
};
use rtl_sim::{LinkDir, RecoveryStats, SimError, SimStats, TraceBuffer, TraceEventKind};

/// A complete host+link+device state capture, taken by
/// [`System::checkpoint`] and rewound by [`System::restore`]. The SEU
/// strike schedule and the soft-error counters deliberately live outside
/// the snapshot, so restoring never replays a strike already applied (a
/// rollback would otherwise rediscover the same fault forever).
#[derive(Clone)]
pub struct SystemSnapshot {
    coproc: CoprocSnapshot,
    to_dev: Link,
    to_host: Link,
    host_tx: VecDeque<u32>,
    host_ep: Option<Endpoint>,
    responses: VecDeque<DevMsg>,
    deframer: DevDeframer,
    cycle: u64,
    link_trace: TraceBuffer,
    last_retransmits: u64,
    /// Lifetime responses enqueued at capture time (replay dedup basis).
    resp_seq: u64,
    /// Lifetime responses the consumer had taken at capture time.
    delivered: u64,
    /// Decoded-instruction count at capture time (checkpoint cadence).
    decoded: u64,
}

impl SystemSnapshot {
    /// Cycle the snapshot was taken at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

/// Automatic checkpoint/rollback state (see [`System::enable_recovery`]).
struct RecoveryState {
    /// Re-checkpoint after this many further decoded instructions.
    interval: u64,
    ckpt: SystemSnapshot,
    /// Host messages sent since the checkpoint, replayed after a rollback.
    journal: Vec<HostMsg>,
    /// Uncorrected soft-error detections already answered by a rollback.
    /// Checkpointing pauses while the device's counter is ahead of this —
    /// a detected fault is in flight and the state is suspect.
    soft_handled: u64,
    rollbacks: u64,
    cycles_lost: u64,
}

/// Host + link + coprocessor.
pub struct System {
    coproc: Coprocessor,
    to_dev: Link,
    to_host: Link,
    /// Frames queued on the host, waiting for link bandwidth (bare mode).
    host_tx: VecDeque<u32>,
    /// Host-side reliable endpoint; `None` means the bare frame link.
    host_ep: Option<Endpoint>,
    /// Responses fully received by the host.
    responses: VecDeque<DevMsg>,
    deframer: DevDeframer,
    cycle: u64,
    word_bits: u32,
    /// Host-side trace of link activity, kept separate from the
    /// coprocessor's pipeline trace so a chatty pipeline cannot evict
    /// link events from the ring.
    link_trace: TraceBuffer,
    /// Total transport retransmits observed through the previous step;
    /// per-step deltas become [`TraceEventKind::LinkRetransmit`] events.
    last_retransmits: u64,
    /// Lifetime count of responses enqueued toward the consumer. Rewound
    /// by [`System::restore`], so a replayed response carries the same
    /// sequence number as its first delivery.
    resp_seq: u64,
    /// Lifetime count of responses the consumer actually took via
    /// [`System::recv`]. Never rewound: it is the consumer's knowledge,
    /// which no rollback can undo. Replayed responses with a sequence
    /// number below this are suppressed.
    resp_delivered: u64,
    /// Automatic rollback recovery; `None` means soft errors surface to
    /// the consumer in band (parity-only / detection-only operation).
    recovery: Option<RecoveryState>,
    /// A soft error arrived this step; rollback fires at the end of
    /// [`System::step`], after the pipeline finishes the cycle.
    pending_rollback: bool,
}

impl System {
    /// Assemble a system. The link model's port width is applied to the
    /// coprocessor configuration so the two stay consistent.
    pub fn new(
        mut cfg: CoprocConfig,
        units: Vec<Box<dyn FunctionalUnit>>,
        link: LinkModel,
    ) -> Result<System, SimError> {
        cfg.rx_frames_per_cycle = link.port_frames_per_cycle;
        cfg.tx_frames_per_cycle = link.port_frames_per_cycle;
        let word_bits = cfg.word_bits;
        Ok(System {
            coproc: Coprocessor::new(cfg, units)?,
            to_dev: Link::new(link),
            to_host: Link::new(link),
            host_tx: VecDeque::new(),
            host_ep: None,
            responses: VecDeque::new(),
            deframer: DevDeframer::new(word_bits),
            cycle: 0,
            word_bits,
            link_trace: TraceBuffer::disabled(),
            last_retransmits: 0,
            resp_seq: 0,
            resp_delivered: 0,
            recovery: None,
            pending_rollback: false,
        })
    }

    /// Assemble a system with the reliable transport enabled on both ends
    /// of the link, optionally with a fault model injecting errors into
    /// each direction (the host→device direction uses the model's seed as
    /// given; device→host derives a distinct seed so the two directions
    /// see independent fault streams).
    pub fn new_reliable(
        mut cfg: CoprocConfig,
        units: Vec<Box<dyn FunctionalUnit>>,
        link: LinkModel,
        transport: TransportConfig,
        faults: Option<FaultModel>,
    ) -> Result<System, SimError> {
        cfg.rx_frames_per_cycle = link.port_frames_per_cycle;
        cfg.tx_frames_per_cycle = link.port_frames_per_cycle;
        cfg.transport = Some(transport);
        let word_bits = cfg.word_bits;
        let mut to_dev = Link::new(link);
        let mut to_host = Link::new(link);
        if let Some(m) = faults {
            to_dev.install_faults(m);
            to_host.install_faults(m.with_seed(m.seed.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15));
        }
        Ok(System {
            coproc: Coprocessor::new(cfg, units)?,
            to_dev,
            to_host,
            host_tx: VecDeque::new(),
            host_ep: Some(Endpoint::new(transport)),
            responses: VecDeque::new(),
            deframer: DevDeframer::new(word_bits),
            cycle: 0,
            word_bits,
            link_trace: TraceBuffer::disabled(),
            last_retransmits: 0,
            resp_seq: 0,
            resp_delivered: 0,
            recovery: None,
            pending_rollback: false,
        })
    }

    /// The coprocessor (diagnostics and experiment measurements).
    pub fn coproc(&self) -> &Coprocessor {
        &self.coproc
    }

    /// Elapsed FPGA cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Word size of the machine.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Timing model of the interconnect (both directions share one).
    pub fn link_model(&self) -> &LinkModel {
        self.to_dev.model()
    }

    /// Queue a message for transmission.
    pub fn send(&mut self, msg: &HostMsg) {
        if let Some(rec) = self.recovery.as_mut() {
            rec.journal.push(msg.clone());
        }
        if let Some(ep) = self.host_ep.as_mut() {
            for f in msg.frames(self.word_bits) {
                ep.send(f);
            }
        } else {
            self.host_tx.extend(msg.frames(self.word_bits));
        }
    }

    /// Select the coprocessor's scheduling mode (see [`ActivityMode`]).
    pub fn set_activity_mode(&mut self, mode: ActivityMode) {
        self.coproc.set_activity_mode(mode);
    }

    /// Scheduler statistics for the embedded coprocessor, with the host's
    /// rollback counters folded into the recovery block.
    pub fn sim_stats(&self) -> SimStats {
        let mut s = self.coproc.sim_stats();
        s.recovery = self.recovery_stats();
        s
    }

    /// Soft-error bookkeeping: the device's strike counters plus the
    /// host's rollback counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut r = self.coproc.recovery_stats();
        if let Some(rec) = &self.recovery {
            r.rollbacks += rec.rollbacks;
            r.cycles_lost += rec.cycles_lost;
        }
        r
    }

    /// Enable (or resize) event tracing on both the coprocessor pipeline
    /// and the host-side link; `0` disables both. The two traces are
    /// separate ring buffers — see [`System::link_trace`].
    pub fn set_trace_depth(&mut self, depth: usize) {
        self.coproc.set_trace_depth(depth);
        self.link_trace = if depth > 0 {
            TraceBuffer::new(depth)
        } else {
            TraceBuffer::disabled()
        };
    }

    /// The host-side link trace (frame tx/rx and retransmit deltas).
    pub fn link_trace(&self) -> &TraceBuffer {
        &self.link_trace
    }

    /// Take the next fully-received response, if any.
    pub fn recv(&mut self) -> Option<DevMsg> {
        let msg = self.responses.pop_front();
        if msg.is_some() {
            self.resp_delivered += 1;
        }
        msg
    }

    /// Responses waiting to be taken.
    pub fn pending_responses(&self) -> usize {
        self.responses.len()
    }

    /// Advance one FPGA clock cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        // Host side: inject queued frames as bandwidth allows. In
        // reliable mode the endpoint paces transmission (window + timer);
        // in bare mode the raw frame queue drains directly.
        if let Some(ep) = self.host_ep.as_mut() {
            ep.poll(now);
            while self.to_dev.can_send(now) {
                let Some(f) = ep.pull_frame(now) else {
                    break;
                };
                self.to_dev.send(now, f);
                self.link_trace.record(
                    now,
                    TraceEventKind::LinkTx {
                        dir: LinkDir::ToDevice,
                    },
                );
            }
        }
        while !self.host_tx.is_empty() && self.to_dev.can_send(now) {
            let f = self.host_tx.pop_front().expect("checked non-empty");
            self.to_dev.send(now, f);
            self.link_trace.record(
                now,
                TraceEventKind::LinkTx {
                    dir: LinkDir::ToDevice,
                },
            );
        }
        // Deliver device-bound frames into the receive FIFO (respecting
        // the port width via rx_space and real flow control on overflow).
        for _ in 0..self.to_dev.model().port_frames_per_cycle {
            let Some(f) = self.to_dev.recv(now) else {
                break;
            };
            if !self.coproc.push_frame(f) {
                self.to_dev.unrecv(now, f);
                break;
            }
            self.link_trace.record(
                now,
                TraceEventKind::LinkRx {
                    dir: LinkDir::ToDevice,
                },
            );
        }
        // Clock the FPGA.
        self.coproc.step();
        // Drain transmit frames onto the host-bound link.
        for _ in 0..self.to_host.model().port_frames_per_cycle {
            if !self.to_host.can_send(now) {
                break;
            }
            let Some(f) = self.coproc.pop_frame() else {
                break;
            };
            self.to_host.send(now, f);
            self.link_trace.record(
                now,
                TraceEventKind::LinkTx {
                    dir: LinkDir::ToHost,
                },
            );
        }
        // Host receives. In reliable mode the wire carries transport
        // segments: validate/ack them, then deframe whatever payload the
        // endpoint releases in order.
        while let Some(f) = self.to_host.recv(now) {
            self.link_trace.record(
                now,
                TraceEventKind::LinkRx {
                    dir: LinkDir::ToHost,
                },
            );
            if let Some(ep) = self.host_ep.as_mut() {
                ep.on_frame(now, f);
            } else if let Some(msg) = self
                .deframer
                .push(f)
                .expect("device frames are well-formed")
            {
                self.enqueue_response(msg);
            }
        }
        while let Some(p) = self.host_ep.as_mut().and_then(Endpoint::deliver) {
            if let Some(msg) = self
                .deframer
                .push(p)
                .expect("validated payload frames are well-formed")
            {
                self.enqueue_response(msg);
            }
        }
        // Retransmissions happen inside the endpoints; surface each
        // step's delta as one trace event so fault-injection tests can
        // reconcile trace totals against `link_stats`.
        let retx = self.host_ep.as_ref().map_or(0, |ep| ep.stats().retransmits)
            + self.coproc.transport_stats().map_or(0, |t| t.retransmits);
        if retx > self.last_retransmits {
            let segments = (retx - self.last_retransmits) as u32;
            self.link_trace
                .record(now, TraceEventKind::LinkRetransmit { segments });
            self.last_retransmits = retx;
        }
        self.cycle += 1;
        if self.pending_rollback {
            self.rollback();
        } else if self.recovery.is_some() {
            self.maybe_checkpoint();
        }
    }

    /// Deliver a deframed response toward the consumer, applying the
    /// recovery policy: with rollback enabled an in-band soft error is
    /// consumed as the rollback trigger (it never surfaces), and replayed
    /// responses the consumer already took before a rollback are
    /// suppressed, so the observable stream carries no duplicates.
    fn enqueue_response(&mut self, msg: DevMsg) {
        if self.recovery.is_some() {
            if let DevMsg::Error {
                code: ErrorCode::SoftError,
                ..
            } = msg
            {
                self.pending_rollback = true;
                return;
            }
        }
        let seq = self.resp_seq;
        self.resp_seq += 1;
        if seq < self.resp_delivered {
            return;
        }
        self.responses.push_back(msg);
    }

    /// Capture the complete host+link+device state. `None` when an
    /// attached functional unit does not support state cloning (see
    /// [`FunctionalUnit::clone_unit`]).
    pub fn checkpoint(&self) -> Option<SystemSnapshot> {
        Some(SystemSnapshot {
            coproc: self.coproc.snapshot()?,
            to_dev: self.to_dev.clone(),
            to_host: self.to_host.clone(),
            host_tx: self.host_tx.clone(),
            host_ep: self.host_ep.clone(),
            responses: self.responses.clone(),
            deframer: self.deframer.clone(),
            cycle: self.cycle,
            link_trace: self.link_trace.clone(),
            last_retransmits: self.last_retransmits,
            resp_seq: self.resp_seq,
            delivered: self.resp_delivered,
            decoded: self.coproc.stats().decoded,
        })
    }

    /// Rewind the system to `snap`. The SEU strike schedule and the
    /// soft-error counters survive the rewind (a strike already applied
    /// is never replayed), as does the consumer's position in the
    /// response stream: responses taken since the snapshot are dropped
    /// from the restored queue and suppressed on regeneration.
    pub fn restore(&mut self, snap: &SystemSnapshot) {
        self.coproc.restore(&snap.coproc);
        self.to_dev = snap.to_dev.clone();
        self.to_host = snap.to_host.clone();
        self.host_tx = snap.host_tx.clone();
        self.host_ep = snap.host_ep.clone();
        self.deframer = snap.deframer.clone();
        self.cycle = snap.cycle;
        self.link_trace = snap.link_trace.clone();
        self.last_retransmits = snap.last_retransmits;
        self.resp_seq = snap.resp_seq;
        self.pending_rollback = false;
        let mut q = snap.responses.clone();
        let consumed = self.resp_delivered.saturating_sub(snap.delivered);
        for _ in 0..consumed.min(q.len() as u64) {
            q.pop_front();
        }
        self.responses = q;
    }

    /// Enable automatic rollback recovery: take a checkpoint now and a
    /// fresh one every `interval_instrs` further decoded instructions
    /// (deferred while the captured state would be suspect — a latent
    /// parity violation or a detected fault still in flight). From then
    /// on an in-band [`ErrorCode::SoftError`] triggers a rewind to the
    /// last checkpoint and a replay of every host message sent since;
    /// replayed responses the consumer already took are suppressed, so at
    /// survivable fault rates the observable stream is exactly the
    /// fault-free one.
    ///
    /// # Errors
    /// [`SimError::Config`] when an attached functional unit does not
    /// support state cloning ([`FunctionalUnit::clone_unit`]).
    pub fn enable_recovery(&mut self, interval_instrs: u64) -> Result<(), SimError> {
        let ckpt = self.checkpoint().ok_or_else(|| {
            SimError::Config("checkpoint/rollback needs clone-capable functional units".into())
        })?;
        let r = self.coproc.recovery_stats();
        self.recovery = Some(RecoveryState {
            interval: interval_instrs.max(1),
            ckpt,
            journal: Vec::new(),
            soft_handled: r.seus_detected - r.seus_corrected,
            rollbacks: 0,
            cycles_lost: 0,
        });
        Ok(())
    }

    /// True when automatic rollback recovery is active.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    fn rollback(&mut self) {
        self.pending_rollback = false;
        let mut rec = self.recovery.take().expect("rollback requires recovery");
        let to_cycle = rec.ckpt.cycle;
        let lost = self.cycle.saturating_sub(to_cycle);
        self.restore(&rec.ckpt);
        rec.rollbacks += 1;
        rec.cycles_lost += lost;
        // Every uncorrected detection so far is answered by this rewind;
        // checkpointing may resume once the counters agree again.
        let r = self.coproc.recovery_stats();
        rec.soft_handled = r.seus_detected - r.seus_corrected;
        self.link_trace.record(
            self.cycle,
            TraceEventKind::Rollback {
                to_cycle,
                lost_cycles: lost,
            },
        );
        // Replay the host traffic sent since the checkpoint. `recovery`
        // is still `None` here, so the replay is not re-journaled; the
        // journal is put back afterwards, ready for a further rollback to
        // the same checkpoint.
        let journal = std::mem::take(&mut rec.journal);
        for m in &journal {
            self.send(m);
        }
        rec.journal = journal;
        self.recovery = Some(rec);
    }

    fn maybe_checkpoint(&mut self) {
        let Some(rec) = self.recovery.as_ref() else {
            return;
        };
        if self.coproc.stats().decoded < rec.ckpt.decoded + rec.interval {
            return;
        }
        // Never capture suspect state: a latent parity violation or a
        // detected-but-not-yet-rolled-back fault baked into the snapshot
        // would make every rollback rediscover the same fault forever.
        let r = self.coproc.recovery_stats();
        if r.seus_detected - r.seus_corrected != rec.soft_handled || !self.coproc.parity_clean() {
            return;
        }
        let Some(snap) = self.checkpoint() else {
            return;
        };
        let rec = self.recovery.as_mut().expect("checked above");
        rec.ckpt = snap;
        rec.journal.clear();
    }

    /// Step until `pred` holds, with a cycle budget.
    ///
    /// In [`ActivityMode::Gated`] (the default), stretches where the
    /// coprocessor is idle and the only pending events are in-flight link
    /// frames are fast-forwarded: the cycle counter jumps straight to the
    /// next deterministic link event instead of stepping per cycle. In
    /// [`ActivityMode::Scheduled`] the same applies to *quiet* stretches
    /// — units burning known latencies and provably-stalled dispatch
    /// heads — using the coprocessor's event wheel. The predicate is then
    /// evaluated once per event instead of once per cycle, which is
    /// equivalent as long as `pred` is a function of the observable
    /// message-level state (responses, idleness) — nothing it can see
    /// changes during a skipped stretch.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget runs out.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&System) -> bool,
    ) -> Result<u64, SimError> {
        let start = self.cycle;
        while !pred(self) {
            // A rollback may rewind `cycle` below `start`; saturating
            // keeps the budget arithmetic (and the return value) sane.
            let elapsed = self.cycle.saturating_sub(start);
            if elapsed >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: max_cycles,
                    waiting_for: "system condition".into(),
                });
            }
            if self.idle_skip(max_cycles - elapsed) == 0 {
                self.step();
            }
        }
        Ok(self.cycle.saturating_sub(start))
    }

    /// Jump over cycles in which nothing can happen. Returns the number
    /// of cycles skipped (0 means: step normally).
    ///
    /// In [`ActivityMode::Gated`] this is safe only when the coprocessor
    /// is completely idle; [`ActivityMode::Scheduled`] additionally skips
    /// spans in which the machine is merely *quiet* (units burning
    /// latency, the dispatcher head provably stalled) by asking the
    /// coprocessor's event wheel for the next internal wake.
    fn idle_skip(&mut self, budget: u64) -> u64 {
        match self.coproc.activity_mode() {
            ActivityMode::Exhaustive => 0,
            ActivityMode::Gated => self.gated_skip(budget),
            ActivityMode::Scheduled => self.scheduled_skip(budget),
        }
    }

    /// The host-side event set: deterministic link events (head in-flight
    /// frame on either direction, the reopening of the outbound bandwidth
    /// gate when the host queue is non-empty) and the host endpoint's
    /// retransmit deadline. Folds into `next` via min.
    fn consider_host_events(&self, next: &mut Option<u64>) {
        let now = self.cycle;
        let mut consider = |t: u64| *next = Some(next.map_or(t, |n| n.min(t)));
        if !self.host_tx.is_empty() {
            consider(self.to_dev.next_send_cycle());
        }
        if let Some(t) = self.to_dev.next_event_cycle(now) {
            consider(t);
        }
        if let Some(t) = self.to_host.next_event_cycle(now) {
            consider(t);
        }
        if let Some(t) = self.host_ep.as_ref().and_then(|ep| ep.next_event_cycle()) {
            consider(t.max(now));
        }
    }

    /// Is the host endpoint holding work that must run this cycle?
    fn host_ep_busy(&self) -> bool {
        self.host_ep
            .as_ref()
            .is_some_and(|ep| ep.has_tx_work() || ep.has_deliverable())
    }

    fn gated_skip(&mut self, budget: u64) -> u64 {
        if !self.coproc.is_idle() || self.host_ep_busy() {
            return 0;
        }
        let now = self.cycle;
        let mut next: Option<u64> = None;
        self.consider_host_events(&mut next);
        if let Some(t) = self.coproc.transport_next_event() {
            next = Some(next.map_or(t.max(now), |n| n.min(t.max(now))));
        }
        let skip = match next {
            // The next event is due now (or overdue): step normally.
            Some(t) if t <= now => 0,
            Some(t) => (t - now).min(budget),
            // No events at all — the system is drained; burn the whole
            // budget so timeout behaviour matches per-cycle stepping.
            None => budget,
        };
        if skip > 0 {
            self.coproc.fast_forward(skip);
            self.cycle += skip;
        }
        skip
    }

    fn scheduled_skip(&mut self, budget: u64) -> u64 {
        // The verdict registers the machine's internal wakes (unit
        // hints, watchdog deadlines, the device transport's retransmit
        // timer) on the event wheel and returns the earliest.
        let mut next: Option<u64> = match self.coproc.quiet_verdict() {
            QuietVerdict::Busy => return 0,
            QuietVerdict::Until(t) => Some(t),
            QuietVerdict::Indefinite => None,
        };
        if self.host_ep_busy() {
            return 0;
        }
        self.consider_host_events(&mut next);
        let now = self.cycle;
        let skip = match next {
            Some(t) if t <= now => 0,
            Some(t) => (t - now).min(budget),
            // Quiet forever (e.g. a hung unit with no watchdog) and no
            // link events: burn the budget like the gated path so
            // timeout behaviour stays identical.
            None => budget,
        };
        if skip > 0 {
            self.coproc.skip_quiet(skip);
            self.cycle += skip;
        }
        skip
    }

    /// Step until the next response arrives and return it.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget runs out first.
    pub fn recv_blocking(&mut self, max_cycles: u64) -> Result<DevMsg, SimError> {
        self.run_until(max_cycles, |s| !s.responses.is_empty())?;
        Ok(self.recv().expect("predicate guaranteed"))
    }

    /// True when no work remains anywhere (host queue, links, FPGA). With
    /// the reliable transport this additionally requires both endpoints to
    /// be quiescent — all traffic delivered *and acknowledged* — or to
    /// have exhausted their retries (a dead endpoint will never drain, so
    /// waiting on it would hang every caller).
    pub fn is_idle(&self) -> bool {
        self.host_tx.is_empty()
            && self.to_dev.in_flight() == 0
            && self.to_host.in_flight() == 0
            && (self.coproc.is_idle()
                // A sender that gave up mid-message leaves a partial
                // message in the device's deframe buffer forever; with the
                // link declared dead that is as settled as it gets.
                || (self.transport_gave_up() && self.coproc.stalled_mid_message()))
            && (self.coproc.transport_quiescent() || self.transport_gave_up())
            && self
                .host_ep
                .as_ref()
                .is_none_or(|ep| ep.is_quiescent() || ep.is_dead())
    }

    /// Did either endpoint exhaust its retransmit budget?
    pub fn transport_gave_up(&self) -> bool {
        self.host_ep.as_ref().is_some_and(|ep| ep.is_dead())
            || self.coproc.transport_stats().is_some_and(|s| s.gave_up)
    }

    /// Aggregate reliability statistics: injected faults on both link
    /// directions plus transport counters from both endpoints. All zeros
    /// on a bare, fault-free system.
    pub fn link_stats(&self) -> LinkStats {
        let mut s = LinkStats::default();
        s.add_faults(&self.to_dev.fault_stats());
        s.add_faults(&self.to_host.fault_stats());
        if let Some(ep) = self.host_ep.as_ref() {
            s.add_transport(ep.stats());
        }
        if let Some(t) = self.coproc.transport_stats() {
            s.add_transport(&t);
        }
        s
    }

    /// Total frames moved in each direction: `(to device, to host)`.
    pub fn frames_carried(&self) -> (u64, u64) {
        (self.to_dev.frames_carried(), self.to_host.frames_carried())
    }

    /// Convert a cycle count to microseconds at `clock_mhz`.
    pub fn cycles_to_us(cycles: u64, clock_mhz: f64) -> f64 {
        cycles as f64 / clock_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_isa::Word;
    use fu_rtm::testing::LatencyFu;

    fn sys(link: LinkModel) -> System {
        System::new(
            CoprocConfig::default(),
            vec![Box::new(LatencyFu::new("add", 1, 1))],
            link,
        )
        .unwrap()
    }

    #[test]
    fn write_read_roundtrip_over_ideal_link() {
        let mut s = sys(LinkModel::ideal());
        s.send(&HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(99, 32),
        });
        s.send(&HostMsg::ReadReg { reg: 1, tag: 5 });
        let resp = s.recv_blocking(10_000).unwrap();
        assert_eq!(
            resp,
            DevMsg::Data {
                tag: 5,
                value: Word::from_u64(99, 32)
            }
        );
        s.run_until(1000, |s| s.is_idle()).unwrap();
    }

    #[test]
    fn slow_link_costs_more_cycles_for_the_same_work() {
        let work = |mut s: System| {
            s.send(&HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(7, 32),
            });
            s.send(&HostMsg::ReadReg { reg: 1, tag: 0 });
            s.recv_blocking(1_000_000).unwrap();
            s.cycle()
        };
        let fast = work(sys(LinkModel::tightly_coupled()));
        let slow = work(sys(LinkModel::prototyping()));
        assert!(
            slow > 5 * fast,
            "prototyping link should dominate: {slow} vs {fast}"
        );
    }

    #[test]
    fn flow_control_survives_a_tiny_rx_fifo() {
        let cfg = CoprocConfig {
            rx_fifo_depth: 2,
            ..CoprocConfig::default()
        };
        let mut s = System::new(cfg, vec![], LinkModel::ideal()).unwrap();
        // Many back-to-back writes against a 2-deep FIFO: flow control
        // must deliver all of them.
        for i in 0..20u8 {
            s.send(&HostMsg::WriteReg {
                reg: i % 8,
                value: Word::from_u64(i as u64, 32),
            });
        }
        s.send(&HostMsg::ReadReg { reg: 7, tag: 1 });
        let resp = s.recv_blocking(100_000).unwrap();
        assert_eq!(
            resp,
            DevMsg::Data {
                tag: 1,
                value: Word::from_u64(15, 32)
            }
        );
    }

    #[test]
    fn sync_over_link() {
        let mut s = sys(LinkModel::pcie_like());
        s.send(&HostMsg::Sync { tag: 3 });
        assert_eq!(s.recv_blocking(10_000).unwrap(), DevMsg::SyncAck { tag: 3 });
    }

    #[test]
    fn frames_accounting() {
        let mut s = sys(LinkModel::ideal());
        s.send(&HostMsg::Sync { tag: 0 });
        s.recv_blocking(10_000).unwrap();
        let (to_dev, to_host) = s.frames_carried();
        assert_eq!(to_dev, 1);
        assert_eq!(to_host, 1);
    }

    #[test]
    fn cycles_to_us_at_50mhz() {
        assert_eq!(System::cycles_to_us(500, 50.0), 10.0);
    }

    fn reliable_sys(link: LinkModel, faults: Option<crate::link::FaultModel>) -> System {
        let tcfg = fu_isa::transport::TransportConfig::for_link(
            link.latency_cycles,
            link.cycles_per_frame,
        );
        System::new_reliable(
            CoprocConfig::default(),
            vec![Box::new(LatencyFu::new("add", 1, 1))],
            link,
            tcfg,
            faults,
        )
        .unwrap()
    }

    fn roundtrip_workload(s: &mut System) -> Vec<DevMsg> {
        for i in 0..8u8 {
            s.send(&HostMsg::WriteReg {
                reg: i % 8,
                value: Word::from_u64(100 + i as u64, 32),
            });
        }
        s.send(&HostMsg::ReadReg { reg: 3, tag: 1 });
        s.send(&HostMsg::ReadReg { reg: 7, tag: 2 });
        s.send(&HostMsg::Sync { tag: 9 });
        s.run_until(5_000_000, |s| s.pending_responses() >= 3 && s.is_idle())
            .unwrap();
        std::iter::from_fn(|| s.recv()).collect()
    }

    #[test]
    fn reliable_link_roundtrips_without_faults() {
        let mut s = reliable_sys(LinkModel::pcie_like(), None);
        let out = roundtrip_workload(&mut s);
        assert_eq!(
            out,
            vec![
                DevMsg::Data {
                    tag: 1,
                    value: Word::from_u64(103, 32)
                },
                DevMsg::Data {
                    tag: 2,
                    value: Word::from_u64(107, 32)
                },
                DevMsg::SyncAck { tag: 9 },
            ]
        );
        let ls = s.link_stats();
        assert_eq!(ls.retransmits, 0, "healthy link must not retransmit");
        assert_eq!(ls.frames_dropped, 0);
        assert!(ls.delivered > 0 && ls.acks_received > 0);
        assert!(!ls.gave_up);
    }

    #[test]
    fn reliable_link_masks_injected_faults() {
        let bare = {
            let mut s = sys(LinkModel::pcie_like());
            roundtrip_workload(&mut s)
        };
        let faults = crate::link::FaultModel::uniform(0xFA_175, 100);
        let mut s = reliable_sys(LinkModel::pcie_like(), Some(faults));
        let out = roundtrip_workload(&mut s);
        assert_eq!(out, bare, "faulty reliable stream must match bare link");
        let ls = s.link_stats();
        assert!(
            ls.frames_dropped > 0 || ls.frames_corrupted > 0 || ls.frames_duplicated > 0,
            "the fault model must actually have fired: {ls:?}"
        );
        assert!(ls.retransmits > 0, "recovery requires retransmission");
    }

    #[test]
    fn reliable_link_faults_are_deterministic() {
        let run_once = || {
            let faults = crate::link::FaultModel::uniform(77, 150);
            let mut s = reliable_sys(LinkModel::tightly_coupled(), Some(faults));
            let out = roundtrip_workload(&mut s);
            (out, s.cycle(), s.link_stats())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn all_activity_modes_agree_over_slow_link_with_long_latency_unit() {
        // Long unit latency over a slow link is the event wheel's target
        // scenario: the scheduled run must produce the same responses in
        // the same number of cycles while skipping most of them.
        let run_mode = |mode: ActivityMode| {
            let mut s = System::new(
                CoprocConfig::default(),
                vec![Box::new(LatencyFu::new("slow", 1, 500))],
                LinkModel::prototyping(),
            )
            .unwrap();
            s.set_activity_mode(mode);
            s.send(&HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(21, 32),
            });
            s.send(&HostMsg::Instr(fu_isa::InstrWord::user(
                fu_isa::UserInstr {
                    func: 1,
                    variety: 0,
                    dst_flag: 1,
                    dst_reg: 2,
                    aux_reg: 0,
                    src1: 1,
                    src2: 1,
                    src3: 0,
                },
            )));
            // Wait out the 500-cycle burn before sending the readback so
            // nothing queues up behind it — the span is then quiet and
            // the event wheel can jump it.
            s.run_until(5_000_000, |s| s.is_idle()).unwrap();
            s.send(&HostMsg::ReadReg { reg: 2, tag: 3 });
            s.send(&HostMsg::Sync { tag: 4 });
            s.run_until(5_000_000, |s| s.pending_responses() >= 2 && s.is_idle())
                .unwrap();
            let out: Vec<DevMsg> = std::iter::from_fn(|| s.recv()).collect();
            (out, s.cycle(), s.sim_stats())
        };
        let gated = run_mode(ActivityMode::Gated);
        let exhaustive = run_mode(ActivityMode::Exhaustive);
        let scheduled = run_mode(ActivityMode::Scheduled);
        assert_eq!(gated.0, exhaustive.0);
        assert_eq!(gated.0, scheduled.0);
        assert_eq!(gated.1, exhaustive.1, "cycle counts agree");
        assert_eq!(gated.1, scheduled.1, "cycle counts agree");
        assert_eq!(gated.2.stage_busy, scheduled.2.stage_busy);
        assert_eq!(gated.2.lat_issue_retire, scheduled.2.lat_issue_retire);
        assert!(
            scheduled.2.cycles_stepped < gated.2.cycles_stepped / 2,
            "scheduled steps far fewer cycles: {} vs gated {}",
            scheduled.2.cycles_stepped,
            gated.2.cycles_stepped,
        );
    }

    fn seu_workload(s: &mut System) -> (Vec<DevMsg>, u64) {
        for i in 0..8u8 {
            s.send(&HostMsg::WriteReg {
                reg: i % 8,
                value: Word::from_u64(100 + u64::from(i), 32),
            });
        }
        // A couple of user instructions so result latches carry live
        // in-flight work (the latch strike class needs a target).
        for (dst, src) in [(2u8, 1u8), (4, 3)] {
            s.send(&HostMsg::Instr(fu_isa::InstrWord::user(
                fu_isa::UserInstr {
                    func: 1,
                    variety: 0,
                    dst_flag: 1,
                    dst_reg: dst,
                    aux_reg: 0,
                    src1: src,
                    src2: src,
                    src3: 0,
                },
            )));
        }
        for t in 0..16u8 {
            s.send(&HostMsg::ReadReg {
                reg: t % 8,
                tag: u16::from(t),
            });
        }
        s.send(&HostMsg::Sync { tag: 99 });
        s.run_until(10_000_000, |s| s.pending_responses() >= 17 && s.is_idle())
            .unwrap();
        (std::iter::from_fn(|| s.recv()).collect(), s.cycle())
    }

    fn protected_sys(mean_interval: u64, seed: u64) -> System {
        let cfg = CoprocConfig::default()
            .with_parity()
            .with_redundancy(fu_rtm::Redundancy::Dmr)
            .with_seu(fu_rtm::SeuConfig::all(seed, mean_interval));
        System::new(
            cfg,
            vec![Box::new(LatencyFu::new("add", 1, 3))],
            LinkModel::pcie_like(),
        )
        .unwrap()
    }

    #[test]
    fn rollback_recovery_masks_device_seus() {
        // Fault-free reference: same machine, radiation off.
        let clean = {
            let mut s = System::new(
                CoprocConfig::default()
                    .with_parity()
                    .with_redundancy(fu_rtm::Redundancy::Dmr),
                vec![Box::new(LatencyFu::new("add", 1, 3))],
                LinkModel::pcie_like(),
            )
            .unwrap();
            seu_workload(&mut s)
        };
        let mut s = protected_sys(300, 0xBEEF);
        s.enable_recovery(4).unwrap();
        let protected = seu_workload(&mut s);
        assert_eq!(
            protected, clean,
            "rollback recovery must reproduce the fault-free stream and timing"
        );
        let r = s.recovery_stats();
        assert!(
            r.seus_injected > 0,
            "strikes must actually have landed: {r:?}"
        );
    }

    #[test]
    fn parity_only_surfaces_soft_errors_in_band() {
        // Detection without recovery: the consumer sees the soft error.
        let mut hit = false;
        for seed in 0..20u64 {
            let mut s = protected_sys(150, seed);
            for i in 0..8u8 {
                s.send(&HostMsg::WriteReg {
                    reg: i,
                    value: Word::from_u64(u64::from(i), 32),
                });
            }
            for t in 0..32u8 {
                s.send(&HostMsg::ReadReg {
                    reg: t % 8,
                    tag: u16::from(t),
                });
            }
            s.send(&HostMsg::Sync { tag: 7 });
            s.run_until(10_000_000, |s| s.is_idle()).unwrap();
            let out: Vec<DevMsg> = std::iter::from_fn(|| s.recv()).collect();
            if out.iter().any(|m| {
                matches!(
                    m,
                    DevMsg::Error {
                        code: ErrorCode::SoftError,
                        ..
                    }
                )
            }) {
                hit = true;
                break;
            }
        }
        assert!(hit, "no seed produced an in-band soft error");
    }

    #[test]
    fn manual_restore_suppresses_replayed_responses() {
        let mut s = sys(LinkModel::ideal());
        s.send(&HostMsg::Sync { tag: 1 });
        s.recv_blocking(10_000).unwrap();
        let snap = s.checkpoint().expect("LatencyFu is clone-capable");
        s.send(&HostMsg::Sync { tag: 2 });
        assert_eq!(s.recv_blocking(10_000).unwrap(), DevMsg::SyncAck { tag: 2 });
        s.restore(&snap);
        // Manual replay of the consumed message: its response must be
        // suppressed — the consumer already holds it.
        s.send(&HostMsg::Sync { tag: 2 });
        s.run_until(10_000, |s| s.is_idle()).unwrap();
        assert_eq!(s.pending_responses(), 0, "replayed SyncAck must dedup");
        // New traffic flows normally again.
        s.send(&HostMsg::Sync { tag: 3 });
        assert_eq!(s.recv_blocking(10_000).unwrap(), DevMsg::SyncAck { tag: 3 });
    }

    #[test]
    fn recovery_composes_with_reliable_transport_and_link_faults() {
        let link = LinkModel::pcie_like();
        let tcfg = fu_isa::transport::TransportConfig::for_link(
            link.latency_cycles,
            link.cycles_per_frame,
        );
        let base = CoprocConfig::default()
            .with_parity()
            .with_redundancy(fu_rtm::Redundancy::Dmr);
        let build = |cfg: CoprocConfig, faults: Option<crate::link::FaultModel>| {
            System::new_reliable(
                cfg,
                vec![Box::new(LatencyFu::new("add", 1, 3))],
                link,
                tcfg,
                faults,
            )
            .unwrap()
        };
        let clean = {
            let mut s = build(base.clone(), None);
            seu_workload(&mut s)
        };
        let faults = crate::link::FaultModel::uniform(0xFA_175, 100);
        let mut s = build(
            base.with_seu(fu_rtm::SeuConfig::all(0xD00D, 500)),
            Some(faults),
        );
        s.enable_recovery(4).unwrap();
        let protected = seu_workload(&mut s);
        assert_eq!(
            protected.0, clean.0,
            "device SEUs + wire faults must both be masked"
        );
    }

    #[test]
    fn scheduled_mode_agrees_under_transport_faults() {
        let run_mode = |mode: ActivityMode| {
            let faults = crate::link::FaultModel::uniform(0xFA_175, 100);
            let mut s = reliable_sys(LinkModel::pcie_like(), Some(faults));
            s.set_activity_mode(mode);
            let out = roundtrip_workload(&mut s);
            (out, s.cycle(), s.link_stats())
        };
        assert_eq!(
            run_mode(ActivityMode::Gated),
            run_mode(ActivityMode::Scheduled)
        );
    }
}
