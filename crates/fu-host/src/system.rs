//! The full-system co-simulation: host queue ↔ link ↔ coprocessor.
//!
//! One [`System::step`] advances the whole arrangement by one FPGA clock
//! cycle: host-bound frames drain from the device, device-bound frames
//! enter the coprocessor's receive FIFO (with link latency and bandwidth
//! applied in both directions), and the coprocessor itself is clocked.

use std::collections::VecDeque;

use crate::link::{Link, LinkModel};
use fu_isa::msg::DevDeframer;
use fu_isa::{DevMsg, HostMsg};
use fu_rtm::{ActivityMode, CoprocConfig, Coprocessor, FunctionalUnit};
use rtl_sim::{SimError, SimStats};

/// Host + link + coprocessor.
pub struct System {
    coproc: Coprocessor,
    to_dev: Link,
    to_host: Link,
    /// Frames queued on the host, waiting for link bandwidth.
    host_tx: VecDeque<u32>,
    /// Responses fully received by the host.
    responses: VecDeque<DevMsg>,
    deframer: DevDeframer,
    cycle: u64,
    word_bits: u32,
}

impl System {
    /// Assemble a system. The link model's port width is applied to the
    /// coprocessor configuration so the two stay consistent.
    pub fn new(
        mut cfg: CoprocConfig,
        units: Vec<Box<dyn FunctionalUnit>>,
        link: LinkModel,
    ) -> Result<System, SimError> {
        cfg.rx_frames_per_cycle = link.port_frames_per_cycle;
        cfg.tx_frames_per_cycle = link.port_frames_per_cycle;
        let word_bits = cfg.word_bits;
        Ok(System {
            coproc: Coprocessor::new(cfg, units)?,
            to_dev: Link::new(link),
            to_host: Link::new(link),
            host_tx: VecDeque::new(),
            responses: VecDeque::new(),
            deframer: DevDeframer::new(word_bits),
            cycle: 0,
            word_bits,
        })
    }

    /// The coprocessor (diagnostics and experiment measurements).
    pub fn coproc(&self) -> &Coprocessor {
        &self.coproc
    }

    /// Elapsed FPGA cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Word size of the machine.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Queue a message for transmission.
    pub fn send(&mut self, msg: &HostMsg) {
        self.host_tx.extend(msg.frames(self.word_bits));
    }

    /// Select the coprocessor's scheduling mode (see [`ActivityMode`]).
    pub fn set_activity_mode(&mut self, mode: ActivityMode) {
        self.coproc.set_activity_mode(mode);
    }

    /// Scheduler statistics for the embedded coprocessor.
    pub fn sim_stats(&self) -> SimStats {
        self.coproc.sim_stats()
    }

    /// Take the next fully-received response, if any.
    pub fn recv(&mut self) -> Option<DevMsg> {
        self.responses.pop_front()
    }

    /// Responses waiting to be taken.
    pub fn pending_responses(&self) -> usize {
        self.responses.len()
    }

    /// Advance one FPGA clock cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        // Host side: inject queued frames as bandwidth allows.
        while !self.host_tx.is_empty() && self.to_dev.can_send(now) {
            let f = self.host_tx.pop_front().expect("checked non-empty");
            self.to_dev.send(now, f);
        }
        // Deliver device-bound frames into the receive FIFO (respecting
        // the port width via rx_space and real flow control on overflow).
        for _ in 0..self.to_dev.model().port_frames_per_cycle {
            let Some(f) = self.to_dev.recv(now) else {
                break;
            };
            if !self.coproc.push_frame(f) {
                self.to_dev.unrecv(now, f);
                break;
            }
        }
        // Clock the FPGA.
        self.coproc.step();
        // Drain transmit frames onto the host-bound link.
        for _ in 0..self.to_host.model().port_frames_per_cycle {
            if !self.to_host.can_send(now) {
                break;
            }
            let Some(f) = self.coproc.pop_frame() else {
                break;
            };
            self.to_host.send(now, f);
        }
        // Host receives.
        while let Some(f) = self.to_host.recv(now) {
            if let Some(msg) = self
                .deframer
                .push(f)
                .expect("device frames are well-formed")
            {
                self.responses.push_back(msg);
            }
        }
        self.cycle += 1;
    }

    /// Step until `pred` holds, with a cycle budget.
    ///
    /// In [`ActivityMode::Gated`] (the default), stretches where the
    /// coprocessor is idle and the only pending events are in-flight link
    /// frames are fast-forwarded: the cycle counter jumps straight to the
    /// next deterministic link event instead of stepping per cycle. The
    /// predicate is then evaluated once per event instead of once per
    /// cycle, which is equivalent as long as `pred` is a function of the
    /// observable message-level state (responses, idleness) — nothing it
    /// can see changes during a skipped stretch.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget runs out.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&System) -> bool,
    ) -> Result<u64, SimError> {
        let start = self.cycle;
        while !pred(self) {
            let elapsed = self.cycle - start;
            if elapsed >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: max_cycles,
                    waiting_for: "system condition".into(),
                });
            }
            if self.idle_skip(max_cycles - elapsed) == 0 {
                self.step();
            }
        }
        Ok(self.cycle - start)
    }

    /// Jump over cycles in which nothing can happen. Returns the number
    /// of cycles skipped (0 means: step normally).
    ///
    /// Safe only when the coprocessor is completely idle — then the sole
    /// sources of future activity are deterministic link events: the head
    /// in-flight frame on either link, or (when the host queue is
    /// non-empty) the reopening of the outbound bandwidth gate.
    fn idle_skip(&mut self, budget: u64) -> u64 {
        if self.coproc.activity_mode() != ActivityMode::Gated || !self.coproc.is_idle() {
            return 0;
        }
        let now = self.cycle;
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| next = Some(next.map_or(t, |n| n.min(t)));
        if !self.host_tx.is_empty() {
            consider(self.to_dev.next_send_cycle());
        }
        if let Some(t) = self.to_dev.next_event_cycle() {
            consider(t);
        }
        if let Some(t) = self.to_host.next_event_cycle() {
            consider(t);
        }
        let skip = match next {
            // The next event is due now (or overdue): step normally.
            Some(t) if t <= now => 0,
            Some(t) => (t - now).min(budget),
            // No events at all — the system is drained; burn the whole
            // budget so timeout behaviour matches per-cycle stepping.
            None => budget,
        };
        if skip > 0 {
            self.coproc.fast_forward(skip);
            self.cycle += skip;
        }
        skip
    }

    /// Step until the next response arrives and return it.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget runs out first.
    pub fn recv_blocking(&mut self, max_cycles: u64) -> Result<DevMsg, SimError> {
        self.run_until(max_cycles, |s| !s.responses.is_empty())?;
        Ok(self.responses.pop_front().expect("predicate guaranteed"))
    }

    /// True when no work remains anywhere (host queue, links, FPGA).
    pub fn is_idle(&self) -> bool {
        self.host_tx.is_empty()
            && self.to_dev.in_flight() == 0
            && self.to_host.in_flight() == 0
            && self.coproc.is_idle()
    }

    /// Total frames moved in each direction: `(to device, to host)`.
    pub fn frames_carried(&self) -> (u64, u64) {
        (self.to_dev.frames_carried(), self.to_host.frames_carried())
    }

    /// Convert a cycle count to microseconds at `clock_mhz`.
    pub fn cycles_to_us(cycles: u64, clock_mhz: f64) -> f64 {
        cycles as f64 / clock_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_isa::Word;
    use fu_rtm::testing::LatencyFu;

    fn sys(link: LinkModel) -> System {
        System::new(
            CoprocConfig::default(),
            vec![Box::new(LatencyFu::new("add", 1, 1))],
            link,
        )
        .unwrap()
    }

    #[test]
    fn write_read_roundtrip_over_ideal_link() {
        let mut s = sys(LinkModel::ideal());
        s.send(&HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(99, 32),
        });
        s.send(&HostMsg::ReadReg { reg: 1, tag: 5 });
        let resp = s.recv_blocking(10_000).unwrap();
        assert_eq!(
            resp,
            DevMsg::Data {
                tag: 5,
                value: Word::from_u64(99, 32)
            }
        );
        s.run_until(1000, |s| s.is_idle()).unwrap();
    }

    #[test]
    fn slow_link_costs_more_cycles_for_the_same_work() {
        let work = |mut s: System| {
            s.send(&HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(7, 32),
            });
            s.send(&HostMsg::ReadReg { reg: 1, tag: 0 });
            s.recv_blocking(1_000_000).unwrap();
            s.cycle()
        };
        let fast = work(sys(LinkModel::tightly_coupled()));
        let slow = work(sys(LinkModel::prototyping()));
        assert!(
            slow > 5 * fast,
            "prototyping link should dominate: {slow} vs {fast}"
        );
    }

    #[test]
    fn flow_control_survives_a_tiny_rx_fifo() {
        let cfg = CoprocConfig {
            rx_fifo_depth: 2,
            ..CoprocConfig::default()
        };
        let mut s = System::new(cfg, vec![], LinkModel::ideal()).unwrap();
        // Many back-to-back writes against a 2-deep FIFO: flow control
        // must deliver all of them.
        for i in 0..20u8 {
            s.send(&HostMsg::WriteReg {
                reg: i % 8,
                value: Word::from_u64(i as u64, 32),
            });
        }
        s.send(&HostMsg::ReadReg { reg: 7, tag: 1 });
        let resp = s.recv_blocking(100_000).unwrap();
        assert_eq!(
            resp,
            DevMsg::Data {
                tag: 1,
                value: Word::from_u64(15, 32)
            }
        );
    }

    #[test]
    fn sync_over_link() {
        let mut s = sys(LinkModel::pcie_like());
        s.send(&HostMsg::Sync { tag: 3 });
        assert_eq!(s.recv_blocking(10_000).unwrap(), DevMsg::SyncAck { tag: 3 });
    }

    #[test]
    fn frames_accounting() {
        let mut s = sys(LinkModel::ideal());
        s.send(&HostMsg::Sync { tag: 0 });
        s.recv_blocking(10_000).unwrap();
        let (to_dev, to_host) = s.frames_carried();
        assert_eq!(to_dev, 1);
        assert_eq!(to_host, 1);
    }

    #[test]
    fn cycles_to_us_at_50mhz() {
        assert_eq!(System::cycles_to_us(500, 50.0), 10.0);
    }
}
