//! The full-system co-simulation: host queue ↔ link ↔ coprocessor.
//!
//! One [`System::step`] advances the whole arrangement by one FPGA clock
//! cycle: host-bound frames drain from the device, device-bound frames
//! enter the coprocessor's receive FIFO (with link latency and bandwidth
//! applied in both directions), and the coprocessor itself is clocked.

use std::collections::VecDeque;

use crate::link::{FaultModel, Link, LinkModel, LinkStats};
use fu_isa::msg::DevDeframer;
use fu_isa::transport::{Endpoint, TransportConfig};
use fu_isa::{DevMsg, HostMsg};
use fu_rtm::{ActivityMode, CoprocConfig, Coprocessor, FunctionalUnit, QuietVerdict};
use rtl_sim::{LinkDir, SimError, SimStats, TraceBuffer, TraceEventKind};

/// Host + link + coprocessor.
pub struct System {
    coproc: Coprocessor,
    to_dev: Link,
    to_host: Link,
    /// Frames queued on the host, waiting for link bandwidth (bare mode).
    host_tx: VecDeque<u32>,
    /// Host-side reliable endpoint; `None` means the bare frame link.
    host_ep: Option<Endpoint>,
    /// Responses fully received by the host.
    responses: VecDeque<DevMsg>,
    deframer: DevDeframer,
    cycle: u64,
    word_bits: u32,
    /// Host-side trace of link activity, kept separate from the
    /// coprocessor's pipeline trace so a chatty pipeline cannot evict
    /// link events from the ring.
    link_trace: TraceBuffer,
    /// Total transport retransmits observed through the previous step;
    /// per-step deltas become [`TraceEventKind::LinkRetransmit`] events.
    last_retransmits: u64,
}

impl System {
    /// Assemble a system. The link model's port width is applied to the
    /// coprocessor configuration so the two stay consistent.
    pub fn new(
        mut cfg: CoprocConfig,
        units: Vec<Box<dyn FunctionalUnit>>,
        link: LinkModel,
    ) -> Result<System, SimError> {
        cfg.rx_frames_per_cycle = link.port_frames_per_cycle;
        cfg.tx_frames_per_cycle = link.port_frames_per_cycle;
        let word_bits = cfg.word_bits;
        Ok(System {
            coproc: Coprocessor::new(cfg, units)?,
            to_dev: Link::new(link),
            to_host: Link::new(link),
            host_tx: VecDeque::new(),
            host_ep: None,
            responses: VecDeque::new(),
            deframer: DevDeframer::new(word_bits),
            cycle: 0,
            word_bits,
            link_trace: TraceBuffer::disabled(),
            last_retransmits: 0,
        })
    }

    /// Assemble a system with the reliable transport enabled on both ends
    /// of the link, optionally with a fault model injecting errors into
    /// each direction (the host→device direction uses the model's seed as
    /// given; device→host derives a distinct seed so the two directions
    /// see independent fault streams).
    pub fn new_reliable(
        mut cfg: CoprocConfig,
        units: Vec<Box<dyn FunctionalUnit>>,
        link: LinkModel,
        transport: TransportConfig,
        faults: Option<FaultModel>,
    ) -> Result<System, SimError> {
        cfg.rx_frames_per_cycle = link.port_frames_per_cycle;
        cfg.tx_frames_per_cycle = link.port_frames_per_cycle;
        cfg.transport = Some(transport);
        let word_bits = cfg.word_bits;
        let mut to_dev = Link::new(link);
        let mut to_host = Link::new(link);
        if let Some(m) = faults {
            to_dev.install_faults(m);
            to_host.install_faults(m.with_seed(m.seed.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15));
        }
        Ok(System {
            coproc: Coprocessor::new(cfg, units)?,
            to_dev,
            to_host,
            host_tx: VecDeque::new(),
            host_ep: Some(Endpoint::new(transport)),
            responses: VecDeque::new(),
            deframer: DevDeframer::new(word_bits),
            cycle: 0,
            word_bits,
            link_trace: TraceBuffer::disabled(),
            last_retransmits: 0,
        })
    }

    /// The coprocessor (diagnostics and experiment measurements).
    pub fn coproc(&self) -> &Coprocessor {
        &self.coproc
    }

    /// Elapsed FPGA cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Word size of the machine.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Timing model of the interconnect (both directions share one).
    pub fn link_model(&self) -> &LinkModel {
        self.to_dev.model()
    }

    /// Queue a message for transmission.
    pub fn send(&mut self, msg: &HostMsg) {
        if let Some(ep) = self.host_ep.as_mut() {
            for f in msg.frames(self.word_bits) {
                ep.send(f);
            }
        } else {
            self.host_tx.extend(msg.frames(self.word_bits));
        }
    }

    /// Select the coprocessor's scheduling mode (see [`ActivityMode`]).
    pub fn set_activity_mode(&mut self, mode: ActivityMode) {
        self.coproc.set_activity_mode(mode);
    }

    /// Scheduler statistics for the embedded coprocessor.
    pub fn sim_stats(&self) -> SimStats {
        self.coproc.sim_stats()
    }

    /// Enable (or resize) event tracing on both the coprocessor pipeline
    /// and the host-side link; `0` disables both. The two traces are
    /// separate ring buffers — see [`System::link_trace`].
    pub fn set_trace_depth(&mut self, depth: usize) {
        self.coproc.set_trace_depth(depth);
        self.link_trace = if depth > 0 {
            TraceBuffer::new(depth)
        } else {
            TraceBuffer::disabled()
        };
    }

    /// The host-side link trace (frame tx/rx and retransmit deltas).
    pub fn link_trace(&self) -> &TraceBuffer {
        &self.link_trace
    }

    /// Take the next fully-received response, if any.
    pub fn recv(&mut self) -> Option<DevMsg> {
        self.responses.pop_front()
    }

    /// Responses waiting to be taken.
    pub fn pending_responses(&self) -> usize {
        self.responses.len()
    }

    /// Advance one FPGA clock cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        // Host side: inject queued frames as bandwidth allows. In
        // reliable mode the endpoint paces transmission (window + timer);
        // in bare mode the raw frame queue drains directly.
        if let Some(ep) = self.host_ep.as_mut() {
            ep.poll(now);
            while self.to_dev.can_send(now) {
                let Some(f) = ep.pull_frame(now) else {
                    break;
                };
                self.to_dev.send(now, f);
                self.link_trace.record(
                    now,
                    TraceEventKind::LinkTx {
                        dir: LinkDir::ToDevice,
                    },
                );
            }
        }
        while !self.host_tx.is_empty() && self.to_dev.can_send(now) {
            let f = self.host_tx.pop_front().expect("checked non-empty");
            self.to_dev.send(now, f);
            self.link_trace.record(
                now,
                TraceEventKind::LinkTx {
                    dir: LinkDir::ToDevice,
                },
            );
        }
        // Deliver device-bound frames into the receive FIFO (respecting
        // the port width via rx_space and real flow control on overflow).
        for _ in 0..self.to_dev.model().port_frames_per_cycle {
            let Some(f) = self.to_dev.recv(now) else {
                break;
            };
            if !self.coproc.push_frame(f) {
                self.to_dev.unrecv(now, f);
                break;
            }
            self.link_trace.record(
                now,
                TraceEventKind::LinkRx {
                    dir: LinkDir::ToDevice,
                },
            );
        }
        // Clock the FPGA.
        self.coproc.step();
        // Drain transmit frames onto the host-bound link.
        for _ in 0..self.to_host.model().port_frames_per_cycle {
            if !self.to_host.can_send(now) {
                break;
            }
            let Some(f) = self.coproc.pop_frame() else {
                break;
            };
            self.to_host.send(now, f);
            self.link_trace.record(
                now,
                TraceEventKind::LinkTx {
                    dir: LinkDir::ToHost,
                },
            );
        }
        // Host receives. In reliable mode the wire carries transport
        // segments: validate/ack them, then deframe whatever payload the
        // endpoint releases in order.
        while let Some(f) = self.to_host.recv(now) {
            self.link_trace.record(
                now,
                TraceEventKind::LinkRx {
                    dir: LinkDir::ToHost,
                },
            );
            if let Some(ep) = self.host_ep.as_mut() {
                ep.on_frame(now, f);
            } else if let Some(msg) = self
                .deframer
                .push(f)
                .expect("device frames are well-formed")
            {
                self.responses.push_back(msg);
            }
        }
        if let Some(ep) = self.host_ep.as_mut() {
            while let Some(p) = ep.deliver() {
                if let Some(msg) = self
                    .deframer
                    .push(p)
                    .expect("validated payload frames are well-formed")
                {
                    self.responses.push_back(msg);
                }
            }
        }
        // Retransmissions happen inside the endpoints; surface each
        // step's delta as one trace event so fault-injection tests can
        // reconcile trace totals against `link_stats`.
        let retx = self.host_ep.as_ref().map_or(0, |ep| ep.stats().retransmits)
            + self.coproc.transport_stats().map_or(0, |t| t.retransmits);
        if retx > self.last_retransmits {
            let segments = (retx - self.last_retransmits) as u32;
            self.link_trace
                .record(now, TraceEventKind::LinkRetransmit { segments });
            self.last_retransmits = retx;
        }
        self.cycle += 1;
    }

    /// Step until `pred` holds, with a cycle budget.
    ///
    /// In [`ActivityMode::Gated`] (the default), stretches where the
    /// coprocessor is idle and the only pending events are in-flight link
    /// frames are fast-forwarded: the cycle counter jumps straight to the
    /// next deterministic link event instead of stepping per cycle. In
    /// [`ActivityMode::Scheduled`] the same applies to *quiet* stretches
    /// — units burning known latencies and provably-stalled dispatch
    /// heads — using the coprocessor's event wheel. The predicate is then
    /// evaluated once per event instead of once per cycle, which is
    /// equivalent as long as `pred` is a function of the observable
    /// message-level state (responses, idleness) — nothing it can see
    /// changes during a skipped stretch.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget runs out.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&System) -> bool,
    ) -> Result<u64, SimError> {
        let start = self.cycle;
        while !pred(self) {
            let elapsed = self.cycle - start;
            if elapsed >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: max_cycles,
                    waiting_for: "system condition".into(),
                });
            }
            if self.idle_skip(max_cycles - elapsed) == 0 {
                self.step();
            }
        }
        Ok(self.cycle - start)
    }

    /// Jump over cycles in which nothing can happen. Returns the number
    /// of cycles skipped (0 means: step normally).
    ///
    /// In [`ActivityMode::Gated`] this is safe only when the coprocessor
    /// is completely idle; [`ActivityMode::Scheduled`] additionally skips
    /// spans in which the machine is merely *quiet* (units burning
    /// latency, the dispatcher head provably stalled) by asking the
    /// coprocessor's event wheel for the next internal wake.
    fn idle_skip(&mut self, budget: u64) -> u64 {
        match self.coproc.activity_mode() {
            ActivityMode::Exhaustive => 0,
            ActivityMode::Gated => self.gated_skip(budget),
            ActivityMode::Scheduled => self.scheduled_skip(budget),
        }
    }

    /// The host-side event set: deterministic link events (head in-flight
    /// frame on either direction, the reopening of the outbound bandwidth
    /// gate when the host queue is non-empty) and the host endpoint's
    /// retransmit deadline. Folds into `next` via min.
    fn consider_host_events(&self, next: &mut Option<u64>) {
        let now = self.cycle;
        let mut consider = |t: u64| *next = Some(next.map_or(t, |n| n.min(t)));
        if !self.host_tx.is_empty() {
            consider(self.to_dev.next_send_cycle());
        }
        if let Some(t) = self.to_dev.next_event_cycle(now) {
            consider(t);
        }
        if let Some(t) = self.to_host.next_event_cycle(now) {
            consider(t);
        }
        if let Some(t) = self.host_ep.as_ref().and_then(|ep| ep.next_event_cycle()) {
            consider(t.max(now));
        }
    }

    /// Is the host endpoint holding work that must run this cycle?
    fn host_ep_busy(&self) -> bool {
        self.host_ep
            .as_ref()
            .is_some_and(|ep| ep.has_tx_work() || ep.has_deliverable())
    }

    fn gated_skip(&mut self, budget: u64) -> u64 {
        if !self.coproc.is_idle() || self.host_ep_busy() {
            return 0;
        }
        let now = self.cycle;
        let mut next: Option<u64> = None;
        self.consider_host_events(&mut next);
        if let Some(t) = self.coproc.transport_next_event() {
            next = Some(next.map_or(t.max(now), |n| n.min(t.max(now))));
        }
        let skip = match next {
            // The next event is due now (or overdue): step normally.
            Some(t) if t <= now => 0,
            Some(t) => (t - now).min(budget),
            // No events at all — the system is drained; burn the whole
            // budget so timeout behaviour matches per-cycle stepping.
            None => budget,
        };
        if skip > 0 {
            self.coproc.fast_forward(skip);
            self.cycle += skip;
        }
        skip
    }

    fn scheduled_skip(&mut self, budget: u64) -> u64 {
        // The verdict registers the machine's internal wakes (unit
        // hints, watchdog deadlines, the device transport's retransmit
        // timer) on the event wheel and returns the earliest.
        let mut next: Option<u64> = match self.coproc.quiet_verdict() {
            QuietVerdict::Busy => return 0,
            QuietVerdict::Until(t) => Some(t),
            QuietVerdict::Indefinite => None,
        };
        if self.host_ep_busy() {
            return 0;
        }
        self.consider_host_events(&mut next);
        let now = self.cycle;
        let skip = match next {
            Some(t) if t <= now => 0,
            Some(t) => (t - now).min(budget),
            // Quiet forever (e.g. a hung unit with no watchdog) and no
            // link events: burn the budget like the gated path so
            // timeout behaviour stays identical.
            None => budget,
        };
        if skip > 0 {
            self.coproc.skip_quiet(skip);
            self.cycle += skip;
        }
        skip
    }

    /// Step until the next response arrives and return it.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget runs out first.
    pub fn recv_blocking(&mut self, max_cycles: u64) -> Result<DevMsg, SimError> {
        self.run_until(max_cycles, |s| !s.responses.is_empty())?;
        Ok(self.responses.pop_front().expect("predicate guaranteed"))
    }

    /// True when no work remains anywhere (host queue, links, FPGA). With
    /// the reliable transport this additionally requires both endpoints to
    /// be quiescent — all traffic delivered *and acknowledged* — or to
    /// have exhausted their retries (a dead endpoint will never drain, so
    /// waiting on it would hang every caller).
    pub fn is_idle(&self) -> bool {
        self.host_tx.is_empty()
            && self.to_dev.in_flight() == 0
            && self.to_host.in_flight() == 0
            && (self.coproc.is_idle()
                // A sender that gave up mid-message leaves a partial
                // message in the device's deframe buffer forever; with the
                // link declared dead that is as settled as it gets.
                || (self.transport_gave_up() && self.coproc.stalled_mid_message()))
            && (self.coproc.transport_quiescent() || self.transport_gave_up())
            && self
                .host_ep
                .as_ref()
                .is_none_or(|ep| ep.is_quiescent() || ep.is_dead())
    }

    /// Did either endpoint exhaust its retransmit budget?
    pub fn transport_gave_up(&self) -> bool {
        self.host_ep.as_ref().is_some_and(|ep| ep.is_dead())
            || self.coproc.transport_stats().is_some_and(|s| s.gave_up)
    }

    /// Aggregate reliability statistics: injected faults on both link
    /// directions plus transport counters from both endpoints. All zeros
    /// on a bare, fault-free system.
    pub fn link_stats(&self) -> LinkStats {
        let mut s = LinkStats::default();
        s.add_faults(&self.to_dev.fault_stats());
        s.add_faults(&self.to_host.fault_stats());
        if let Some(ep) = self.host_ep.as_ref() {
            s.add_transport(ep.stats());
        }
        if let Some(t) = self.coproc.transport_stats() {
            s.add_transport(&t);
        }
        s
    }

    /// Total frames moved in each direction: `(to device, to host)`.
    pub fn frames_carried(&self) -> (u64, u64) {
        (self.to_dev.frames_carried(), self.to_host.frames_carried())
    }

    /// Convert a cycle count to microseconds at `clock_mhz`.
    pub fn cycles_to_us(cycles: u64, clock_mhz: f64) -> f64 {
        cycles as f64 / clock_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fu_isa::Word;
    use fu_rtm::testing::LatencyFu;

    fn sys(link: LinkModel) -> System {
        System::new(
            CoprocConfig::default(),
            vec![Box::new(LatencyFu::new("add", 1, 1))],
            link,
        )
        .unwrap()
    }

    #[test]
    fn write_read_roundtrip_over_ideal_link() {
        let mut s = sys(LinkModel::ideal());
        s.send(&HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(99, 32),
        });
        s.send(&HostMsg::ReadReg { reg: 1, tag: 5 });
        let resp = s.recv_blocking(10_000).unwrap();
        assert_eq!(
            resp,
            DevMsg::Data {
                tag: 5,
                value: Word::from_u64(99, 32)
            }
        );
        s.run_until(1000, |s| s.is_idle()).unwrap();
    }

    #[test]
    fn slow_link_costs_more_cycles_for_the_same_work() {
        let work = |mut s: System| {
            s.send(&HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(7, 32),
            });
            s.send(&HostMsg::ReadReg { reg: 1, tag: 0 });
            s.recv_blocking(1_000_000).unwrap();
            s.cycle()
        };
        let fast = work(sys(LinkModel::tightly_coupled()));
        let slow = work(sys(LinkModel::prototyping()));
        assert!(
            slow > 5 * fast,
            "prototyping link should dominate: {slow} vs {fast}"
        );
    }

    #[test]
    fn flow_control_survives_a_tiny_rx_fifo() {
        let cfg = CoprocConfig {
            rx_fifo_depth: 2,
            ..CoprocConfig::default()
        };
        let mut s = System::new(cfg, vec![], LinkModel::ideal()).unwrap();
        // Many back-to-back writes against a 2-deep FIFO: flow control
        // must deliver all of them.
        for i in 0..20u8 {
            s.send(&HostMsg::WriteReg {
                reg: i % 8,
                value: Word::from_u64(i as u64, 32),
            });
        }
        s.send(&HostMsg::ReadReg { reg: 7, tag: 1 });
        let resp = s.recv_blocking(100_000).unwrap();
        assert_eq!(
            resp,
            DevMsg::Data {
                tag: 1,
                value: Word::from_u64(15, 32)
            }
        );
    }

    #[test]
    fn sync_over_link() {
        let mut s = sys(LinkModel::pcie_like());
        s.send(&HostMsg::Sync { tag: 3 });
        assert_eq!(s.recv_blocking(10_000).unwrap(), DevMsg::SyncAck { tag: 3 });
    }

    #[test]
    fn frames_accounting() {
        let mut s = sys(LinkModel::ideal());
        s.send(&HostMsg::Sync { tag: 0 });
        s.recv_blocking(10_000).unwrap();
        let (to_dev, to_host) = s.frames_carried();
        assert_eq!(to_dev, 1);
        assert_eq!(to_host, 1);
    }

    #[test]
    fn cycles_to_us_at_50mhz() {
        assert_eq!(System::cycles_to_us(500, 50.0), 10.0);
    }

    fn reliable_sys(link: LinkModel, faults: Option<crate::link::FaultModel>) -> System {
        let tcfg = fu_isa::transport::TransportConfig::for_link(
            link.latency_cycles,
            link.cycles_per_frame,
        );
        System::new_reliable(
            CoprocConfig::default(),
            vec![Box::new(LatencyFu::new("add", 1, 1))],
            link,
            tcfg,
            faults,
        )
        .unwrap()
    }

    fn roundtrip_workload(s: &mut System) -> Vec<DevMsg> {
        for i in 0..8u8 {
            s.send(&HostMsg::WriteReg {
                reg: i % 8,
                value: Word::from_u64(100 + i as u64, 32),
            });
        }
        s.send(&HostMsg::ReadReg { reg: 3, tag: 1 });
        s.send(&HostMsg::ReadReg { reg: 7, tag: 2 });
        s.send(&HostMsg::Sync { tag: 9 });
        s.run_until(5_000_000, |s| s.pending_responses() >= 3 && s.is_idle())
            .unwrap();
        std::iter::from_fn(|| s.recv()).collect()
    }

    #[test]
    fn reliable_link_roundtrips_without_faults() {
        let mut s = reliable_sys(LinkModel::pcie_like(), None);
        let out = roundtrip_workload(&mut s);
        assert_eq!(
            out,
            vec![
                DevMsg::Data {
                    tag: 1,
                    value: Word::from_u64(103, 32)
                },
                DevMsg::Data {
                    tag: 2,
                    value: Word::from_u64(107, 32)
                },
                DevMsg::SyncAck { tag: 9 },
            ]
        );
        let ls = s.link_stats();
        assert_eq!(ls.retransmits, 0, "healthy link must not retransmit");
        assert_eq!(ls.frames_dropped, 0);
        assert!(ls.delivered > 0 && ls.acks_received > 0);
        assert!(!ls.gave_up);
    }

    #[test]
    fn reliable_link_masks_injected_faults() {
        let bare = {
            let mut s = sys(LinkModel::pcie_like());
            roundtrip_workload(&mut s)
        };
        let faults = crate::link::FaultModel::uniform(0xFA_175, 100);
        let mut s = reliable_sys(LinkModel::pcie_like(), Some(faults));
        let out = roundtrip_workload(&mut s);
        assert_eq!(out, bare, "faulty reliable stream must match bare link");
        let ls = s.link_stats();
        assert!(
            ls.frames_dropped > 0 || ls.frames_corrupted > 0 || ls.frames_duplicated > 0,
            "the fault model must actually have fired: {ls:?}"
        );
        assert!(ls.retransmits > 0, "recovery requires retransmission");
    }

    #[test]
    fn reliable_link_faults_are_deterministic() {
        let run_once = || {
            let faults = crate::link::FaultModel::uniform(77, 150);
            let mut s = reliable_sys(LinkModel::tightly_coupled(), Some(faults));
            let out = roundtrip_workload(&mut s);
            (out, s.cycle(), s.link_stats())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn all_activity_modes_agree_over_slow_link_with_long_latency_unit() {
        // Long unit latency over a slow link is the event wheel's target
        // scenario: the scheduled run must produce the same responses in
        // the same number of cycles while skipping most of them.
        let run_mode = |mode: ActivityMode| {
            let mut s = System::new(
                CoprocConfig::default(),
                vec![Box::new(LatencyFu::new("slow", 1, 500))],
                LinkModel::prototyping(),
            )
            .unwrap();
            s.set_activity_mode(mode);
            s.send(&HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(21, 32),
            });
            s.send(&HostMsg::Instr(fu_isa::InstrWord::user(fu_isa::UserInstr {
                func: 1,
                variety: 0,
                dst_flag: 1,
                dst_reg: 2,
                aux_reg: 0,
                src1: 1,
                src2: 1,
                src3: 0,
            })));
            // Wait out the 500-cycle burn before sending the readback so
            // nothing queues up behind it — the span is then quiet and
            // the event wheel can jump it.
            s.run_until(5_000_000, |s| s.is_idle()).unwrap();
            s.send(&HostMsg::ReadReg { reg: 2, tag: 3 });
            s.send(&HostMsg::Sync { tag: 4 });
            s.run_until(5_000_000, |s| s.pending_responses() >= 2 && s.is_idle())
                .unwrap();
            let out: Vec<DevMsg> = std::iter::from_fn(|| s.recv()).collect();
            (out, s.cycle(), s.sim_stats())
        };
        let gated = run_mode(ActivityMode::Gated);
        let exhaustive = run_mode(ActivityMode::Exhaustive);
        let scheduled = run_mode(ActivityMode::Scheduled);
        assert_eq!(gated.0, exhaustive.0);
        assert_eq!(gated.0, scheduled.0);
        assert_eq!(gated.1, exhaustive.1, "cycle counts agree");
        assert_eq!(gated.1, scheduled.1, "cycle counts agree");
        assert_eq!(gated.2.stage_busy, scheduled.2.stage_busy);
        assert_eq!(gated.2.lat_issue_retire, scheduled.2.lat_issue_retire);
        assert!(
            scheduled.2.cycles_stepped < gated.2.cycles_stepped / 2,
            "scheduled steps far fewer cycles: {} vs gated {}",
            scheduled.2.cycles_stepped,
            gated.2.cycles_stepped,
        );
    }

    #[test]
    fn scheduled_mode_agrees_under_transport_faults() {
        let run_mode = |mode: ActivityMode| {
            let faults = crate::link::FaultModel::uniform(0xFA_175, 100);
            let mut s = reliable_sys(LinkModel::pcie_like(), Some(faults));
            s.set_activity_mode(mode);
            let out = roundtrip_workload(&mut s);
            (out, s.cycle(), s.link_stats())
        };
        assert_eq!(run_mode(ActivityMode::Gated), run_mode(ActivityMode::Scheduled));
    }
}
