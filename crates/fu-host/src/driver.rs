//! The host-side driver API.
//!
//! "An application program running on a host computer uses the FPGA, with
//! its functional units, similarly to the way it would use any
//! conventional coprocessor … Typically the FPGA would be treated as a
//! fast I/O device."
//!
//! [`Driver`] is that device interface: blocking register reads/writes,
//! instruction issue (including from assembly text), synchronisation, and
//! convenience calls for the χ-sort unit. Every blocking call advances
//! the co-simulated system until the response arrives, so driver code
//! reads exactly like the C host program the paper envisages.

use crate::system::System;
use fu_isa::msg::ErrorCode;
use fu_isa::{DevMsg, Flags, HostMsg, InstrWord, Tag, Word};
use rtl_sim::SimError;
use xi_sort::XiOp;

/// Errors surfaced to driver callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The simulation did not produce the expected response in time.
    Timeout(SimError),
    /// The device reported an error response.
    Device {
        /// Error class.
        code: ErrorCode,
        /// Extra information.
        info: u32,
    },
    /// A response arrived with an unexpected tag or type.
    Protocol(String),
    /// Assembly-source error (from [`Driver::exec_asm`]).
    Asm(String),
    /// The shard panicked while executing the job (a poisoned
    /// simulation — e.g. an upset in unprotected control state). The
    /// shard is rebuilt afterwards; the farm's failover pass may retry
    /// the job on a healthy shard.
    Panicked(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Timeout(e) => write!(f, "timeout: {e}"),
            DriverError::Device { code, info } => {
                write!(f, "device error {code:?} (info {info})")
            }
            DriverError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DriverError::Asm(m) => write!(f, "assembly error: {m}"),
            DriverError::Panicked(m) => write!(f, "shard panicked: {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// The blocking driver.
///
/// ```
/// use fu_host::{Driver, LinkModel, System};
/// use fu_rtm::CoprocConfig;
/// use fu_units::standard_units;
///
/// let system = System::new(
///     CoprocConfig::default(),
///     standard_units(32),
///     LinkModel::pcie_like(),
/// ).unwrap();
/// let mut dev = Driver::new(system, 1_000_000);
///
/// dev.write_reg(1, 40);
/// dev.write_reg(2, 2);
/// dev.exec_asm("ADD r3, r1, r2, f1").unwrap();
/// assert_eq!(dev.read_reg(3).unwrap().as_u64(), 42);
/// ```
pub struct Driver {
    sys: System,
    next_tag: Tag,
    timeout: u64,
}

impl Driver {
    /// Wrap a system; `timeout` bounds every blocking call (in FPGA
    /// cycles).
    pub fn new(sys: System, timeout: u64) -> Driver {
        Driver {
            sys,
            next_tag: 0,
            timeout,
        }
    }

    /// The underlying system (for cycle counts and statistics).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Enable typed event tracing on the coprocessor pipeline and the
    /// link, retaining up to `depth` events in each ring. `0` disables.
    /// Latency histograms (see [`Driver::latency_snapshot`]) are always
    /// collected regardless of this setting.
    pub fn enable_tracing(&mut self, depth: usize) {
        self.sys.set_trace_depth(depth);
    }

    /// Per-instruction latency percentiles (issue→dispatch,
    /// dispatch→retire, issue→retire) over everything executed so far.
    pub fn latency_snapshot(&self) -> rtl_sim::LatencySnapshot {
        self.sys.sim_stats().latency_snapshot()
    }

    /// Every retained trace event — coprocessor pipeline and host link —
    /// merged into one stream ordered by cycle (ties keep pipeline events
    /// first). Empty unless [`Driver::enable_tracing`] was called.
    pub fn dump_trace(&self) -> Vec<rtl_sim::TraceEvent> {
        let mut all: Vec<rtl_sim::TraceEvent> = self
            .sys
            .coproc()
            .trace()
            .events()
            .chain(self.sys.link_trace().events())
            .copied()
            .collect();
        all.sort_by_key(|e| e.cycle);
        all
    }

    /// The merged trace serialized as a Chrome-trace (Perfetto) JSON
    /// document — write it to a file and open it in `ui.perfetto.dev`.
    pub fn perfetto_trace(&self) -> String {
        rtl_sim::trace::perfetto::export(self.dump_trace().iter())
    }

    /// Consume the driver, returning the system.
    pub fn into_system(self) -> System {
        self.sys
    }

    /// Elapsed FPGA cycles.
    pub fn cycles(&self) -> u64 {
        self.sys.cycle()
    }

    fn tag(&mut self) -> Tag {
        let t = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        t
    }

    fn expect(&mut self) -> Result<DevMsg, DriverError> {
        match self.sys.recv_blocking(self.timeout) {
            Ok(DevMsg::Error { code, info }) => Err(DriverError::Device { code, info }),
            Ok(m) => Ok(m),
            Err(e) => Err(DriverError::Timeout(e)),
        }
    }

    /// Queue an arbitrary pre-built host message (fire-and-forget). The
    /// caller owns tag allocation for tagged messages sent this way;
    /// mixing raw tagged reads with the driver's own blocking calls will
    /// confuse response matching.
    pub fn send_raw(&mut self, msg: &HostMsg) {
        self.sys.send(msg);
    }

    /// Write a data register (fire-and-forget; ordering is guaranteed by
    /// the in-order pipeline).
    pub fn write_reg(&mut self, reg: u8, value: u64) {
        let w = Word::from_u64(value, self.sys.word_bits());
        self.sys.send(&HostMsg::WriteReg { reg, value: w });
    }

    /// Write a full-width word to a data register.
    pub fn write_reg_word(&mut self, reg: u8, value: Word) {
        self.sys.send(&HostMsg::WriteReg { reg, value });
    }

    /// Write a flag register.
    pub fn write_flags(&mut self, reg: u8, flags: Flags) {
        self.sys.send(&HostMsg::WriteFlags { reg, flags });
    }

    /// Issue an instruction (user or management).
    pub fn exec(&mut self, instr: InstrWord) {
        self.sys.send(&HostMsg::Instr(instr));
    }

    /// Assemble and issue a one-line instruction.
    ///
    /// # Errors
    /// Returns [`DriverError::Asm`] on a source error.
    pub fn exec_asm(&mut self, line: &str) -> Result<(), DriverError> {
        let instr = fu_isa::asm::assemble_line(line, 1)
            .map_err(|e| DriverError::Asm(e.to_string()))?
            .ok_or_else(|| DriverError::Asm("blank line".into()))?;
        self.exec(instr);
        Ok(())
    }

    /// Assemble and issue a whole program.
    ///
    /// # Errors
    /// Returns [`DriverError::Asm`] on a source error.
    pub fn exec_program(&mut self, source: &str) -> Result<usize, DriverError> {
        let prog = fu_isa::asm::assemble(source).map_err(|e| DriverError::Asm(e.to_string()))?;
        let n = prog.len();
        for instr in prog {
            self.exec(instr);
        }
        Ok(n)
    }

    // ---- pipelined batch issue ---------------------------------------
    //
    // A real host program never writes the device FIFO one register at a
    // time and then sits down to wait: it streams a whole batch through
    // the link while the device is already executing the front of it, and
    // drains whatever responses appear along the way. `exec_batch` models
    // exactly that: instruction messages are packed into the link as
    // bandwidth allows and the system is clocked *while* issuing, so
    // issue, execution and response draining overlap instead of paying a
    // full host↔device round-trip per instruction.

    /// Issue a batch of instructions, overlapping issue with execution.
    ///
    /// Every instruction is queued onto the link and the system is
    /// stepped at link pace during issue, so by the time the last
    /// instruction leaves the host the device is already deep into the
    /// batch. Any responses produced meanwhile accumulate in the system's
    /// response queue (see [`Driver::poll`] / [`Driver::wait_tag`]).
    pub fn exec_batch(&mut self, instrs: &[InstrWord]) {
        let wb = self.sys.word_bits();
        let pace = self.sys.link_model().cycles_per_frame;
        for &instr in instrs {
            let msg = HostMsg::Instr(instr);
            let wire_cycles = msg.frame_len(wb) as u64 * pace;
            self.sys.send(&msg);
            // Clock the co-simulation for as long as this message
            // occupies the outbound link, draining responses as they
            // appear — the "pipelined" part of batch issue.
            for _ in 0..wire_cycles {
                self.sys.step();
            }
        }
    }

    /// Assemble a whole program and issue it through the pipelined batch
    /// path. Returns the number of instructions issued.
    ///
    /// # Errors
    /// Returns [`DriverError::Asm`] on a source error.
    pub fn submit_program(&mut self, source: &str) -> Result<usize, DriverError> {
        let prog = fu_isa::asm::assemble(source).map_err(|e| DriverError::Asm(e.to_string()))?;
        self.exec_batch(&prog);
        Ok(prog.len())
    }

    /// Run the system until it is completely idle and return every
    /// response received along the way (including any already pending).
    ///
    /// # Errors
    /// [`DriverError::Timeout`] when the driver's cycle budget expires
    /// before the system drains.
    pub fn drain_idle(&mut self) -> Result<Vec<DevMsg>, DriverError> {
        self.sys
            .run_until(self.timeout, |s| s.is_idle())
            .map_err(DriverError::Timeout)?;
        Ok(std::iter::from_fn(|| self.sys.recv()).collect())
    }

    /// Blocking read of a data register.
    ///
    /// # Errors
    /// Times out, reports device errors, or flags protocol violations.
    pub fn read_reg(&mut self, reg: u8) -> Result<Word, DriverError> {
        let tag = self.tag();
        self.sys.send(&HostMsg::ReadReg { reg, tag });
        match self.expect()? {
            DevMsg::Data { tag: t, value } if t == tag => Ok(value),
            other => Err(DriverError::Protocol(format!(
                "expected Data tag {tag}, got {other:?}"
            ))),
        }
    }

    /// Blocking read of a flag register.
    ///
    /// # Errors
    /// As [`Driver::read_reg`].
    pub fn read_flags(&mut self, reg: u8) -> Result<Flags, DriverError> {
        let tag = self.tag();
        self.sys.send(&HostMsg::ReadFlags { reg, tag });
        match self.expect()? {
            DevMsg::Flags { tag: t, flags } if t == tag => Ok(flags),
            other => Err(DriverError::Protocol(format!(
                "expected Flags tag {tag}, got {other:?}"
            ))),
        }
    }

    /// Blocking barrier: returns once every previously issued operation
    /// has fully completed.
    ///
    /// # Errors
    /// As [`Driver::read_reg`].
    pub fn sync(&mut self) -> Result<(), DriverError> {
        let tag = self.tag();
        self.sys.send(&HostMsg::Sync { tag });
        match self.expect()? {
            DevMsg::SyncAck { tag: t } if t == tag => Ok(()),
            other => Err(DriverError::Protocol(format!(
                "expected SyncAck tag {tag}, got {other:?}"
            ))),
        }
    }

    // ---- queued (non-blocking) API -----------------------------------
    //
    // Over a high-latency link, one blocking read costs a full round
    // trip; queueing many tagged reads and collecting the responses later
    // hides the latency — the batch style a real host program would use
    // against the paper's slow prototyping link.

    /// Queue a register read; returns the tag its response will carry.
    pub fn read_reg_async(&mut self, reg: u8) -> Tag {
        let tag = self.tag();
        self.sys.send(&HostMsg::ReadReg { reg, tag });
        tag
    }

    /// Queue a flag-register read; returns the response tag.
    pub fn read_flags_async(&mut self, reg: u8) -> Tag {
        let tag = self.tag();
        self.sys.send(&HostMsg::ReadFlags { reg, tag });
        tag
    }

    /// Advance one cycle and return a response if one completed.
    pub fn poll(&mut self) -> Option<DevMsg> {
        self.sys.step();
        self.sys.recv()
    }

    /// Collect responses until the one tagged `tag` arrives; responses
    /// always arrive in issue order, so everything before it is returned
    /// too (in order).
    ///
    /// # Errors
    /// Times out or surfaces a device error.
    pub fn wait_tag(&mut self, tag: Tag) -> Result<Vec<DevMsg>, DriverError> {
        let mut collected = Vec::new();
        loop {
            let msg = self.expect()?;
            let done = matches!(
                &msg,
                DevMsg::Data { tag: t, .. } | DevMsg::Flags { tag: t, .. } | DevMsg::SyncAck { tag: t }
                    if *t == tag
            );
            collected.push(msg);
            if done {
                return Ok(collected);
            }
        }
    }

    // ---- χ-sort convenience layer -----------------------------------

    /// Issue a χ-sort operation: operand staged via `operand_reg`, result
    /// (if any) into `result_reg`, flags into f0.
    pub fn xi_op(&mut self, op: XiOp, operand_reg: u8, result_reg: u8) {
        self.exec(InstrWord::user(fu_isa::UserInstr {
            func: fu_isa::funit_codes::XI_SORT,
            variety: op.variety(),
            dst_flag: 0,
            dst_reg: result_reg,
            aux_reg: 0,
            src1: operand_reg,
            src2: 0,
            src3: 0,
        }));
    }

    /// Load `values` into the χ-sort unit (Reset, Push×n, InitBounds),
    /// staging each value through `staging_reg`.
    ///
    /// # Errors
    /// Propagates read/sync failures.
    pub fn xi_load(&mut self, values: &[u32], staging_reg: u8) -> Result<(), DriverError> {
        self.xi_op(XiOp::Reset, staging_reg, 0);
        for &v in values {
            self.write_reg(staging_reg, v as u64);
            // The write and the push are ordered by the pipeline's
            // interlocks; no round trip needed per element.
            self.xi_op(XiOp::Push, staging_reg, 0);
        }
        self.xi_op(XiOp::InitBounds, staging_reg, 0);
        self.sync()
    }

    /// Run a full sort on the loaded array; returns the refinement-round
    /// count.
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn xi_sort(&mut self, result_reg: u8) -> Result<u64, DriverError> {
        self.xi_op(XiOp::Sort, 0, result_reg);
        Ok(self.read_reg(result_reg)?.as_u64())
    }

    /// Read back the sorted array of length `n`.
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn xi_read_sorted(
        &mut self,
        n: usize,
        staging_reg: u8,
        result_reg: u8,
    ) -> Result<Vec<u32>, DriverError> {
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            self.write_reg(staging_reg, k as u64);
            self.xi_op(XiOp::ReadAt, staging_reg, result_reg);
            out.push(self.read_reg(result_reg)?.as_u64() as u32);
        }
        Ok(out)
    }

    /// Select the k-th smallest of the loaded array.
    ///
    /// # Errors
    /// Propagates read failures.
    pub fn xi_select(
        &mut self,
        k: u32,
        staging_reg: u8,
        result_reg: u8,
    ) -> Result<u32, DriverError> {
        self.write_reg(staging_reg, k as u64);
        self.xi_op(XiOp::SelectK, staging_reg, result_reg);
        Ok(self.read_reg(result_reg)?.as_u64() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use fu_rtm::CoprocConfig;
    use fu_units::standard_units;
    use xi_sort::{XiConfig, XiSortAdapter};

    fn driver_with_units() -> Driver {
        let sys = System::new(
            CoprocConfig::default(),
            standard_units(32),
            LinkModel::tightly_coupled(),
        )
        .unwrap();
        Driver::new(sys, 2_000_000)
    }

    fn driver_with_xi(n_cells: u32) -> Driver {
        let sys = System::new(
            CoprocConfig::default(),
            vec![Box::new(XiSortAdapter::new(XiConfig::new(n_cells), 32))],
            LinkModel::tightly_coupled(),
        )
        .unwrap();
        Driver::new(sys, 20_000_000)
    }

    #[test]
    fn arithmetic_program_via_assembly() {
        let mut d = driver_with_units();
        d.write_reg(1, 100);
        d.write_reg(2, 42);
        d.exec_program(
            "; add then subtract
             ADD r3, r1, r2, f1
             SUB r4, r3, r2, f2",
        )
        .unwrap();
        assert_eq!(d.read_reg(3).unwrap().as_u64(), 142);
        assert_eq!(d.read_reg(4).unwrap().as_u64(), 100);
        assert!(!d.read_flags(1).unwrap().carry());
    }

    #[test]
    fn multi_word_add_with_carry_chain() {
        // 64-bit addition on a 32-bit machine via ADD/ADC — the use case
        // Table 3.1 names for the external carry.
        let a: u64 = 0xffff_ffff_0000_0005;
        let b: u64 = 0x0000_0001_0000_0003;
        let mut d = driver_with_units();
        d.write_reg(1, a & 0xffff_ffff);
        d.write_reg(2, a >> 32);
        d.write_reg(3, b & 0xffff_ffff);
        d.write_reg(4, b >> 32);
        d.exec_program(
            "ADD r5, r1, r3, f1
             ADC r6, r2, r4, f2, f1",
        )
        .unwrap();
        let lo = d.read_reg(5).unwrap().as_u64();
        let hi = d.read_reg(6).unwrap().as_u64();
        assert_eq!((hi << 32) | lo, a.wrapping_add(b));
    }

    #[test]
    fn widening_multiply_uses_two_destinations() {
        let mut d = driver_with_units();
        d.write_reg(1, 0xffff_ffff);
        d.write_reg(2, 0x1000_0000);
        d.exec_asm("MUL r3, r4, r1, r2").unwrap();
        let expect = 0xffff_ffffu64 * 0x1000_0000;
        assert_eq!(d.read_reg(3).unwrap().as_u64(), expect & 0xffff_ffff);
        assert_eq!(d.read_reg(4).unwrap().as_u64(), expect >> 32);
    }

    #[test]
    fn device_errors_surface() {
        let mut d = driver_with_units();
        match d.read_reg(200) {
            Err(DriverError::Device {
                code: ErrorCode::BadRegister,
                info: 200,
            }) => {}
            other => panic!("expected BadRegister, got {other:?}"),
        }
        // The machine keeps working after an error.
        d.write_reg(1, 5);
        assert_eq!(d.read_reg(1).unwrap().as_u64(), 5);
    }

    #[test]
    fn asm_errors_surface() {
        let mut d = driver_with_units();
        assert!(matches!(d.exec_asm("FROB r1"), Err(DriverError::Asm(_))));
    }

    #[test]
    fn xi_sort_end_to_end() {
        let mut d = driver_with_xi(16);
        let values = [55u32, 11, 44, 22, 33];
        d.xi_load(&values, 1).unwrap();
        let rounds = d.xi_sort(2).unwrap();
        assert!(rounds >= 1);
        assert_eq!(
            d.xi_read_sorted(values.len(), 1, 2).unwrap(),
            vec![11, 22, 33, 44, 55]
        );
    }

    #[test]
    fn xi_select_median() {
        let mut d = driver_with_xi(16);
        let values = [9u32, 2, 7, 4, 5, 6, 3, 8, 1];
        d.xi_load(&values, 1).unwrap();
        assert_eq!(d.xi_select(4, 1, 2).unwrap(), 5);
    }

    #[test]
    fn queued_reads_hide_link_latency() {
        // 16 reads over the slow prototyping link: blocking pays 16 round
        // trips, the queued API roughly one.
        let mk = || {
            let sys = System::new(
                CoprocConfig::default(),
                standard_units(32),
                LinkModel::prototyping(),
            )
            .unwrap();
            Driver::new(sys, 100_000_000)
        };
        // Blocking.
        let mut d = mk();
        for r in 0..8u8 {
            d.write_reg(r, r as u64 * 3);
        }
        for r in 0..8u8 {
            assert_eq!(d.read_reg(r).unwrap().as_u64(), r as u64 * 3);
        }
        let blocking = d.cycles();
        // Queued.
        let mut d = mk();
        for r in 0..8u8 {
            d.write_reg(r, r as u64 * 3);
        }
        let mut last = 0;
        for r in 0..8u8 {
            last = d.read_reg_async(r);
        }
        let flag_tag = d.read_flags_async(0);
        let _ = flag_tag; // collected below after the data responses
        let responses = d.wait_tag(last).unwrap();
        assert_eq!(responses.len(), 8);
        for (r, msg) in responses.iter().enumerate() {
            assert_eq!(
                *msg,
                DevMsg::Data {
                    tag: r as Tag,
                    value: Word::from_u64(r as u64 * 3, 32)
                }
            );
        }
        // The queued flag read follows the data responses in order.
        let tail = d.wait_tag(flag_tag).unwrap();
        assert!(matches!(tail.last(), Some(DevMsg::Flags { .. })));
        let queued = d.cycles();
        assert!(
            blocking > 3 * queued,
            "batching should hide most round trips: blocking={blocking}, queued={queued}"
        );
    }

    #[test]
    fn poll_drives_the_system_one_cycle() {
        let mut d = driver_with_units();
        d.write_reg(1, 9);
        let tag = d.read_reg_async(1);
        let mut polls = 0;
        let msg = loop {
            if let Some(m) = d.poll() {
                break m;
            }
            polls += 1;
            assert!(polls < 100_000);
        };
        assert_eq!(
            msg,
            DevMsg::Data {
                tag,
                value: Word::from_u64(9, 32)
            }
        );
        assert!(polls > 0, "a response takes at least a few cycles");
    }

    #[test]
    fn sync_then_idle() {
        let mut d = driver_with_units();
        d.write_reg(1, 1);
        d.exec_asm("INC r2, r1").unwrap();
        d.sync().unwrap();
        let mut sys = d.into_system();
        sys.run_until(1000, |s| s.is_idle()).unwrap();
    }
}
