//! `fu-host` — the host-side model and full-system co-simulation harness.
//!
//! The paper's system spans a host CPU and the FPGA: "the main program is
//! written in C or any other programming language, and runs in one or more
//! CPUs which communicate via the interface with a set of functional
//! units." This crate provides everything on the CPU side of that
//! boundary:
//!
//! * [`link::Link`] — latency/bandwidth models of the physical
//!   interconnect. The paper's prototype had "only a very slow connection
//!   from the FPGA board to the processor", but argues "this is not a
//!   limitation of the approach: there are FPGAs that are tightly
//!   integrated with processors, offering extremely high transfer rates";
//!   the presets span that spectrum (experiment E8).
//! * [`system::System`] — the co-simulation of host queue ↔ link ↔
//!   coprocessor, stepped one FPGA clock cycle at a time.
//! * [`driver::Driver`] — the programmer-facing API ("typically the FPGA
//!   would be treated as a fast I/O device"): register reads/writes,
//!   instruction issue, synchronisation, and χ-sort convenience calls.
//! * [`baseline`] — conventional-CPU baselines and the clock-rate cost
//!   model used to convert simulated FPGA cycles into time (the paper's
//!   prototype runs at "approximately 50 MHz").

pub mod baseline;
pub mod driver;
pub mod farm;
pub mod link;
pub mod multihost;
pub mod serve;
pub mod system;

pub use baseline::CpuModel;
pub use driver::{Driver, DriverError};
pub use farm::{
    Farm, FarmConfig, FarmError, Job, JobOutput, JobResult, Placement, ShardCtx, ShardReport,
};
pub use link::{FaultModel, FaultStats, Link, LinkModel, LinkStats};
pub use multihost::MultiHostSystem;
pub use serve::{Admission, Completion, ServeConfig, Service, TenantId, TenantSlo, TenantSpec};
pub use system::{System, SystemSnapshot};
