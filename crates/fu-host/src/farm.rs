//! A sharded coprocessor farm: many independent [`System`]s, one worker
//! thread each, fed from a bounded work queue.
//!
//! The paper lets "one or more host CPUs" drive many functional units;
//! the farm is the host-side scale-out of that picture — N simulated
//! coprocessor boards, each with its own link, stepped concurrently on OS
//! threads. Three properties make it production-shaped rather than a toy
//! thread pool:
//!
//! * **Deterministic assignment.** Job *i* always runs on shard
//!   `i % shards`, and each shard executes its jobs in submission order,
//!   on a shard built from the same per-shard seed. Thread scheduling can
//!   reorder *when* shards run, never *what* they compute.
//! * **Bit-identical merging.** [`Farm::run_parallel`] returns exactly
//!   the result vector [`Farm::run_serial`] returns — same responses,
//!   same tags, same errors — because results are merged by job index,
//!   not by arrival time. The `farm_determinism` proptest enforces this.
//! * **Backpressure.** Every shard's queue is a bounded
//!   [`std::sync::mpsc::sync_channel`]; a slow shard blocks the feeder
//!   instead of ballooning memory.

use std::sync::mpsc;
use std::sync::Arc;

use crate::driver::{Driver, DriverError};
use crate::link::{FaultModel, LinkModel, LinkStats};
use crate::system::System;
use fu_isa::msg::ErrorCode;
use fu_isa::{DevMsg, HostMsg};
use fu_rtm::{ActivityMode, CoprocConfig};
use fu_units::standard_units;
use rtl_sim::{SimError, SimStats};

// Compile-time audit that whole shards can migrate across threads; this
// is what the `Send` bounds on `FunctionalUnit`/`Kernel` buy.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<System>();
    assert_send::<Driver>();
    assert_send::<Job>();
    assert_send::<JobResult>();
};

/// splitmix64, used to derive independent per-shard seeds from the farm
/// seed (same generator the link fault model uses).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How jobs are assigned to shards. Both policies are pure functions of
/// the job list, computed up front on the calling thread, so serial and
/// parallel runs take bit-identical placement decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Placement {
    /// Job `i` runs on shard `i % shards`. Simple and stable, but blind
    /// to job weight: one heavy job convoys every lighter job that
    /// round-robin lands behind it on the same shard.
    #[default]
    RoundRobin,
    /// Each job (in submission order) goes to the shard with the least
    /// accumulated estimated cost ([`Job::cost`]), ties to the lowest
    /// index. A heavy job claims a shard and subsequent light jobs route
    /// around it instead of queueing behind it.
    LeastLoaded,
}

/// Farm-level knobs. The shard *contents* come from the builder closure
/// passed to [`Farm::new`]; this struct only shapes the orchestration.
#[derive(Debug, Clone, Copy)]
pub struct FarmConfig {
    /// Number of shards (and worker threads). Must be ≥ 1.
    pub shards: usize,
    /// Depth of each shard's bounded job queue. Feeding a full queue
    /// blocks — that is the backpressure, not an error.
    pub queue_depth: usize,
    /// Per-blocking-call cycle budget for every shard's driver.
    pub timeout: u64,
    /// Base seed; shard `k` receives `splitmix64(seed ^ k·φ)` so fault
    /// models (and any other seeded structure) differ across shards but
    /// replay identically run to run.
    pub seed: u64,
    /// Scheduling mode applied to every shard.
    pub activity_mode: ActivityMode,
    /// Event-trace ring depth applied to every shard (`0` = tracing off,
    /// the default). Latency histograms are collected either way.
    pub trace_depth: usize,
    /// Failover retry budget per failed job. A job whose shard panicked,
    /// timed out, or returned an unrecovered soft error is re-executed on
    /// the other shards in round-robin order, up to this many attempts,
    /// by a deterministic second pass shared by the serial and parallel
    /// paths. `0` (the default) disables failover — failures stay data in
    /// the results; panicked shards are still rebuilt either way.
    pub max_job_retries: u32,
    /// Job→shard assignment policy. Both run paths use the same
    /// precomputed plan, so placement never breaks serial ≡ parallel.
    pub placement: Placement,
}

impl Default for FarmConfig {
    fn default() -> FarmConfig {
        FarmConfig {
            shards: 4,
            queue_depth: 16,
            timeout: 20_000_000,
            seed: 0,
            activity_mode: ActivityMode::default(),
            trace_depth: 0,
            max_job_retries: 0,
            placement: Placement::RoundRobin,
        }
    }
}

/// Identity handed to the shard builder.
#[derive(Debug, Clone, Copy)]
pub struct ShardCtx {
    /// Shard index in `0..shards`.
    pub index: usize,
    /// This shard's derived seed (stable across runs for a given farm
    /// seed and shard count).
    pub seed: u64,
    /// Total shard count, for builders that partition resources.
    pub shards: usize,
}

/// One unit of work. Jobs are self-contained: everything a shard needs
/// travels in the job, so any shard with the right units can run it.
#[derive(Debug, Clone, PartialEq)]
pub enum Job {
    /// Assemble `source`, issue it through the pipelined batch path,
    /// barrier, then read back `reads` (queued, in order).
    Program {
        /// Assembly source text.
        source: String,
        /// Data registers to read back after the barrier.
        reads: Vec<u8>,
    },
    /// Raw pre-tagged host messages; the shard sends them all, runs to
    /// idle and returns every response.
    Requests(Vec<HostMsg>),
    /// Load the values into the shard's χ-sort unit, sort, and read the
    /// sorted array back.
    XiSort(Vec<u32>),
}

impl Job {
    /// Estimated cost of the job in abstract work units, used by
    /// [`Placement::LeastLoaded`] and by the serving layer's
    /// deficit-round-robin scheduler. A pure function of the job payload
    /// (instruction/message counts, element counts), never of runtime
    /// state — placement planned from it is deterministic.
    #[must_use]
    pub fn cost(&self) -> u64 {
        let c = match self {
            // One unit per instruction line plus the readback traffic.
            Job::Program { source, reads } => {
                let instrs = source
                    .lines()
                    .filter(|l| {
                        let t = l.trim();
                        !t.is_empty() && !t.starts_with(';')
                    })
                    .count();
                (instrs + reads.len()) as u64
            }
            Job::Requests(msgs) => msgs.len() as u64,
            // A sort costs load + sort rounds + element-wise readback.
            Job::XiSort(values) => 4 * values.len() as u64,
        };
        c.max(1)
    }
}

/// What a job produced.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Response messages, in device order.
    Msgs(Vec<DevMsg>),
    /// χ-sort refinement-round count and the sorted array.
    Sorted {
        /// Refinement rounds the sort took.
        rounds: u64,
        /// The sorted values.
        values: Vec<u32>,
    },
}

/// One job's outcome, tagged with its index and the shard that ran it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Index of the job in the submitted slice.
    pub job: usize,
    /// Shard that produced this output: the planned shard on first
    /// execution, the retry shard when the failover pass re-ran the job.
    pub shard: usize,
    /// Simulated cycles the shard spent executing this job (the delta of
    /// the shard's cycle counter across the job; `0` when the shard
    /// panicked under it). Bit-identical between serial and parallel
    /// runs, like the output itself.
    pub cycles: u64,
    /// Responses, or the driver error the job died with. Errors are data
    /// here — a failing job must not take the farm down, and the error
    /// itself must be bit-identical between serial and parallel runs.
    pub output: Result<JobOutput, DriverError>,
}

/// Per-shard accounting from the most recent run.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Jobs this shard executed.
    pub jobs: u64,
    /// Simulated cycles the shard's system consumed.
    pub cycles: u64,
    /// Scheduler statistics rollup source.
    pub sim: SimStats,
    /// Link/transport statistics rollup source.
    pub link: LinkStats,
    /// The shard's retained trace events (pipeline + link, cycle order),
    /// empty unless [`FarmConfig::trace_depth`] was set.
    pub trace: Vec<rtl_sim::TraceEvent>,
}

/// Orchestration-level failures. Per-job failures travel inside
/// [`JobResult::output`] instead.
#[derive(Debug, Clone, PartialEq)]
pub enum FarmError {
    /// The shard builder failed.
    Build(SimError),
    /// A worker thread panicked (a bug in a unit or the framework, not a
    /// device-visible error).
    WorkerPanicked {
        /// The shard whose worker died.
        shard: usize,
    },
    /// `shards == 0`.
    NoShards,
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Build(e) => write!(f, "shard build failed: {e:?}"),
            FarmError::WorkerPanicked { shard } => write!(f, "worker for shard {shard} panicked"),
            FarmError::NoShards => write!(f, "a farm needs at least one shard"),
        }
    }
}

impl std::error::Error for FarmError {}

type ShardBuilder = Arc<dyn Fn(&ShardCtx) -> Result<System, SimError> + Send + Sync>;

/// The farm itself. Shards are rebuilt from the builder at the start of
/// every run, so `run_serial` and `run_parallel` observe identical
/// initial state — that is what makes them comparable bit for bit.
pub struct Farm {
    cfg: FarmConfig,
    builder: ShardBuilder,
    reports: Vec<ShardReport>,
    /// Jobs the failover pass re-executed in the last run.
    failed_over: u64,
    /// Retry attempts the failover pass consumed in the last run.
    job_retries: u64,
}

impl Farm {
    /// A farm whose shards are produced by `builder`.
    pub fn new(
        cfg: FarmConfig,
        builder: impl Fn(&ShardCtx) -> Result<System, SimError> + Send + Sync + 'static,
    ) -> Farm {
        Farm {
            cfg,
            builder: Arc::new(builder),
            reports: Vec::new(),
            failed_over: 0,
            job_retries: 0,
        }
    }

    /// A farm of standard-unit coprocessors on bare `link`s — the
    /// arithmetic workhorse configuration.
    pub fn standard(cfg: FarmConfig, coproc: CoprocConfig, link: LinkModel) -> Farm {
        Farm::new(cfg, move |_ctx| {
            System::new(coproc.clone(), standard_units(coproc.word_bits), link)
        })
    }

    /// As [`Farm::standard`] but over the reliable transport with a fault
    /// model whose seed is re-derived per shard: every shard sees an
    /// independent — but reproducible — fault stream.
    pub fn standard_reliable(
        cfg: FarmConfig,
        coproc: CoprocConfig,
        link: LinkModel,
        faults: Option<FaultModel>,
    ) -> Farm {
        Farm::new(cfg, move |ctx| {
            let tcfg = fu_isa::transport::TransportConfig::for_link(
                link.latency_cycles,
                link.cycles_per_frame,
            );
            System::new_reliable(
                coproc.clone(),
                standard_units(coproc.word_bits),
                link,
                tcfg,
                faults.map(|m| m.with_seed(ctx.seed)),
            )
        })
    }

    /// Farm configuration.
    pub fn config(&self) -> &FarmConfig {
        &self.cfg
    }

    /// The shard job `job_index` maps to under round-robin placement.
    /// For weight-aware policies use [`Farm::plan`], which needs the
    /// whole job list.
    pub fn assign(&self, job_index: usize) -> usize {
        job_index % self.cfg.shards.max(1)
    }

    /// The job→shard plan for `jobs` under the configured placement
    /// policy — the exact assignment both run paths will use.
    pub fn plan(&self, jobs: &[Job]) -> Vec<usize> {
        plan_assignment(&self.cfg, jobs)
    }

    /// The derived seed shard `index` is built with.
    pub fn shard_seed(&self, index: usize) -> u64 {
        shard_seed_for(self.cfg.seed, index)
    }

    fn build_shard(&self, index: usize) -> Result<Driver, FarmError> {
        build_shard_from(&self.builder, &self.cfg, index)
    }

    fn report(drv: &Driver, jobs: u64) -> ShardReport {
        let sys = drv.system();
        ShardReport {
            jobs,
            cycles: sys.cycle(),
            sim: sys.sim_stats(),
            link: sys.link_stats(),
            trace: if sys.coproc().trace().is_enabled() || sys.link_trace().is_enabled() {
                drv.dump_trace()
            } else {
                Vec::new()
            },
        }
    }

    /// Run `jobs` on this thread: every shard is built exactly as in
    /// [`Farm::run_parallel`] and executes the same jobs in the same
    /// order, so this is the reference the parallel path is compared to
    /// (and a useful zero-thread mode in its own right).
    ///
    /// # Errors
    /// [`FarmError`] on orchestration failures; per-job errors are data
    /// inside the returned results.
    pub fn run_serial(&mut self, jobs: &[Job]) -> Result<Vec<JobResult>, FarmError> {
        if self.cfg.shards == 0 {
            return Err(FarmError::NoShards);
        }
        let mut drivers = (0..self.cfg.shards)
            .map(|s| self.build_shard(s))
            .collect::<Result<Vec<_>, _>>()?;
        let plan = plan_assignment(&self.cfg, jobs);
        let mut counts = vec![0u64; self.cfg.shards];
        let mut results = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let s = plan[i];
            counts[s] += 1;
            let before = drivers[s].cycles();
            let output = run_job_guarded(&mut drivers[s], job);
            let cycles = if matches!(output, Err(DriverError::Panicked(_))) {
                drivers[s] = build_shard_from(&self.builder, &self.cfg, s)
                    .expect("shard builder already succeeded for this index");
                0
            } else {
                drivers[s].cycles() - before
            };
            results.push(JobResult {
                job: i,
                shard: s,
                cycles,
                output,
            });
        }
        let (failed_over, retries) = failover_pass(
            &self.cfg,
            &self.builder,
            &mut drivers,
            &mut counts,
            &mut results,
            jobs,
            &plan,
        );
        self.failed_over = failed_over;
        self.job_retries = retries;
        self.reports = drivers
            .iter()
            .zip(&counts)
            .map(|(d, &n)| Farm::report(d, n))
            .collect();
        Ok(results)
    }

    /// Run `jobs` across one worker thread per shard, merging results by
    /// job index. The merged vector is **bit-identical** to
    /// [`Farm::run_serial`] on the same jobs.
    ///
    /// # Errors
    /// [`FarmError`] on orchestration failures (including worker panics);
    /// per-job errors are data inside the returned results.
    pub fn run_parallel(&mut self, jobs: &[Job]) -> Result<Vec<JobResult>, FarmError> {
        if self.cfg.shards == 0 {
            return Err(FarmError::NoShards);
        }
        let drivers = (0..self.cfg.shards)
            .map(|s| self.build_shard(s))
            .collect::<Result<Vec<_>, _>>()?;
        let queue_depth = self.cfg.queue_depth.max(1);
        let plan = plan_assignment(&self.cfg, jobs);
        let mut results: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
        let mut drivers_back: Vec<Option<Driver>> = (0..self.cfg.shards).map(|_| None).collect();
        let mut counts = vec![0u64; self.cfg.shards];
        let shards = self.cfg.shards;
        std::thread::scope(|scope| -> Result<(), FarmError> {
            let mut senders = Vec::with_capacity(shards);
            let mut handles = Vec::with_capacity(shards);
            for (s, mut drv) in drivers.into_iter().enumerate() {
                // Bounded: a feeder racing ahead of a slow shard parks on
                // `send` instead of queueing unbounded work.
                let (tx, rx) = mpsc::sync_channel::<(usize, &Job)>(queue_depth);
                senders.push(tx);
                let builder = Arc::clone(&self.builder);
                let cfg = self.cfg;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut n = 0u64;
                    while let Ok((idx, job)) = rx.recv() {
                        n += 1;
                        let before = drv.cycles();
                        let output = run_job_guarded(&mut drv, job);
                        let cycles = if matches!(output, Err(DriverError::Panicked(_))) {
                            // The panicked simulation is unusable; later
                            // jobs of this shard run on a fresh build,
                            // exactly as in `run_serial`.
                            drv = build_shard_from(&builder, &cfg, s)
                                .expect("shard builder already succeeded for this index");
                            0
                        } else {
                            drv.cycles() - before
                        };
                        out.push(JobResult {
                            job: idx,
                            shard: s,
                            cycles,
                            output,
                        });
                    }
                    (out, n, drv)
                }));
            }
            // Feed in submission order. A send only fails when a worker
            // died; surface that as the panic it is about to become.
            for (i, job) in jobs.iter().enumerate() {
                let s = plan[i];
                if senders[s].send((i, job)).is_err() {
                    break; // joined below; the panic is reported there
                }
            }
            drop(senders);
            for (s, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((out, n, drv)) => {
                        for r in out {
                            let slot = r.job;
                            results[slot] = Some(r);
                        }
                        counts[s] = n;
                        drivers_back[s] = Some(drv);
                    }
                    Err(_) => return Err(FarmError::WorkerPanicked { shard: s }),
                }
            }
            Ok(())
        })?;
        let mut drivers: Vec<Driver> = drivers_back
            .into_iter()
            .map(|d| d.expect("every worker returned its driver"))
            .collect();
        let mut results: Vec<JobResult> = results
            .into_iter()
            .map(|r| r.expect("every submitted job is assigned to exactly one worker"))
            .collect();
        let (failed_over, retries) = failover_pass(
            &self.cfg,
            &self.builder,
            &mut drivers,
            &mut counts,
            &mut results,
            jobs,
            &plan,
        );
        self.failed_over = failed_over;
        self.job_retries = retries;
        self.reports = drivers
            .iter()
            .zip(&counts)
            .map(|(d, &n)| Farm::report(d, n))
            .collect();
        Ok(results)
    }

    /// Per-shard accounting from the most recent run.
    pub fn shard_reports(&self) -> &[ShardReport] {
        &self.reports
    }

    /// Scheduler statistics summed over all shards of the last run, with
    /// the failover pass's job accounting folded into the recovery block.
    pub fn sim_stats(&self) -> SimStats {
        let mut s: SimStats = self.reports.iter().map(|r| &r.sim).sum();
        s.recovery.jobs_failed_over += self.failed_over;
        s.recovery.job_retries += self.job_retries;
        s
    }

    /// Link/transport statistics summed over all shards of the last run.
    pub fn link_stats(&self) -> LinkStats {
        self.reports.iter().map(|r| r.link).sum()
    }

    /// Simulated makespan of the last run: shards run concurrently in
    /// simulated time, so the farm finishes when its slowest shard does.
    pub fn makespan_cycles(&self) -> u64 {
        self.reports.iter().map(|r| r.cycles).max().unwrap_or(0)
    }

    /// Total simulated cycles summed over shards (the serial-equivalent
    /// cost of the last run).
    pub fn total_cycles(&self) -> u64 {
        self.reports.iter().map(|r| r.cycles).sum()
    }

    /// Per-instruction latency percentiles aggregated over every shard of
    /// the last run (the histograms merge exactly, so farm-level
    /// percentiles are as precise as a single shard's).
    pub fn latency_snapshot(&self) -> rtl_sim::LatencySnapshot {
        self.sim_stats().latency_snapshot()
    }

    /// One shard's retained trace as a Chrome-trace (Perfetto) JSON
    /// document. `None` when the shard index is out of range or tracing
    /// was off for the last run.
    pub fn shard_perfetto(&self, shard: usize) -> Option<String> {
        let r = self.reports.get(shard)?;
        if r.trace.is_empty() {
            return None;
        }
        Some(rtl_sim::trace::perfetto::export(r.trace.iter()))
    }
}

/// Compute the job→shard assignment for `jobs` under `cfg.placement`.
/// A pure function of the job list (never of runtime state), shared by
/// `run_serial`, `run_parallel` and the failover pass — the placement
/// half of the serial ≡ parallel determinism argument.
fn plan_assignment(cfg: &FarmConfig, jobs: &[Job]) -> Vec<usize> {
    let shards = cfg.shards.max(1);
    match cfg.placement {
        Placement::RoundRobin => (0..jobs.len()).map(|i| i % shards).collect(),
        Placement::LeastLoaded => {
            let mut load = vec![0u64; shards];
            jobs.iter()
                .map(|job| {
                    let s = load
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &l)| (l, i))
                        .map(|(i, _)| i)
                        .expect("shards >= 1");
                    load[s] += job.cost();
                    s
                })
                .collect()
        }
    }
}

/// Derive shard `index`'s seed from the farm seed (splitmix64 over a
/// golden-ratio stride, the scheme [`FarmConfig::seed`] documents).
fn shard_seed_for(farm_seed: u64, index: usize) -> u64 {
    splitmix64(farm_seed.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Build (or rebuild) shard `index` exactly as the farm first built it —
/// same derived seed, same activity mode, same trace depth — so a shard
/// replaced after a panic is indistinguishable from a fresh one.
fn build_shard_from(
    builder: &ShardBuilder,
    cfg: &FarmConfig,
    index: usize,
) -> Result<Driver, FarmError> {
    let ctx = ShardCtx {
        index,
        seed: shard_seed_for(cfg.seed, index),
        shards: cfg.shards,
    };
    let mut sys = builder(&ctx).map_err(FarmError::Build)?;
    sys.set_activity_mode(cfg.activity_mode);
    if cfg.trace_depth > 0 {
        sys.set_trace_depth(cfg.trace_depth);
    }
    Ok(Driver::new(sys, cfg.timeout))
}

/// [`run_job`] behind a panic guard: a panic inside the shard (a
/// poisoned simulation — e.g. an upset that corrupted control state into
/// an impossible configuration) becomes [`DriverError::Panicked`] data
/// instead of killing the worker. The caller must treat the driver as
/// lost and rebuild the shard.
fn run_job_guarded(drv: &mut Driver, job: &Job) -> Result<JobOutput, DriverError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(drv, job)))
        .unwrap_or_else(|p| Err(DriverError::Panicked(panic_message(p.as_ref()))))
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Failures the failover pass may re-execute elsewhere: the shard died
/// under the job, hung past its budget, or reported a soft error no
/// protection level could repair. Deterministic outcomes (protocol or
/// assembly errors, other device errors) would fail identically on every
/// shard and are not retried.
fn retryable(out: &Result<JobOutput, DriverError>) -> bool {
    matches!(
        out,
        Err(DriverError::Panicked(_))
            | Err(DriverError::Timeout(_))
            | Err(DriverError::Device {
                code: ErrorCode::SoftError,
                ..
            })
    )
}

/// Pass 2 of both run paths: re-execute failed jobs on the surviving
/// shards. Runs on the calling thread in job-index order with a
/// round-robin shard choice starting after the job's home shard, so the
/// serial and parallel paths take bit-identical failover decisions.
/// Returns `(jobs re-executed, retry attempts consumed)`.
#[allow(clippy::too_many_arguments)]
fn failover_pass(
    cfg: &FarmConfig,
    builder: &ShardBuilder,
    drivers: &mut [Driver],
    counts: &mut [u64],
    results: &mut [JobResult],
    jobs: &[Job],
    plan: &[usize],
) -> (u64, u64) {
    if cfg.max_job_retries == 0 {
        return (0, 0);
    }
    let shards = drivers.len();
    let (mut failed_over, mut retries) = (0u64, 0u64);
    for i in 0..results.len() {
        if !retryable(&results[i].output) {
            continue;
        }
        failed_over += 1;
        let home = plan[results[i].job];
        for attempt in 0..cfg.max_job_retries as usize {
            retries += 1;
            let s = (home + 1 + attempt) % shards;
            counts[s] += 1;
            let before = drivers[s].cycles();
            let output = run_job_guarded(&mut drivers[s], &jobs[results[i].job]);
            let cycles = if matches!(output, Err(DriverError::Panicked(_))) {
                drivers[s] = build_shard_from(builder, cfg, s)
                    .expect("shard builder already succeeded for this index");
                0
            } else {
                drivers[s].cycles() - before
            };
            let done = !retryable(&output);
            results[i] = JobResult {
                job: results[i].job,
                shard: s,
                cycles,
                output,
            };
            if done {
                break;
            }
        }
    }
    (failed_over, retries)
}

/// Execute one job on a shard's driver. This function is the *only* code
/// path jobs run through — serial and parallel runs share it, which is
/// half of the determinism argument (the other half is identical shard
/// construction and per-shard job order).
fn run_job(drv: &mut Driver, job: &Job) -> Result<JobOutput, DriverError> {
    match job {
        Job::Program { source, reads } => {
            drv.submit_program(source)?;
            drv.sync()?;
            if reads.is_empty() {
                return Ok(JobOutput::Msgs(Vec::new()));
            }
            let mut last = 0;
            for &r in reads {
                last = drv.read_reg_async(r);
            }
            Ok(JobOutput::Msgs(drv.wait_tag(last)?))
        }
        Job::Requests(msgs) => {
            for m in msgs {
                drv.send_raw(m);
            }
            Ok(JobOutput::Msgs(drv.drain_idle()?))
        }
        Job::XiSort(values) => {
            drv.xi_load(values, 1)?;
            let rounds = drv.xi_sort(2)?;
            let values = drv.xi_read_sorted(values.len(), 1, 2)?;
            Ok(JobOutput::Sorted { rounds, values })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job::Program {
                source: format!(
                    "ADD r3, r1, r2, f1\n INC r4, r3, f2\n ; job {i}\n ADD r5, r4, r3, f3"
                ),
                reads: vec![3, 4, 5],
            })
            .collect()
    }

    fn farm(shards: usize) -> Farm {
        Farm::standard(
            FarmConfig {
                shards,
                ..FarmConfig::default()
            },
            CoprocConfig::default(),
            LinkModel::pcie_like(),
        )
    }

    #[test]
    fn parallel_matches_serial_on_a_small_batch() {
        let jobs = add_jobs(10);
        let mut f = farm(3);
        let serial = f.run_serial(&jobs).unwrap();
        let serial_reports: Vec<u64> = f.shard_reports().iter().map(|r| r.cycles).collect();
        let parallel = f.run_parallel(&jobs).unwrap();
        let parallel_reports: Vec<u64> = f.shard_reports().iter().map(|r| r.cycles).collect();
        assert_eq!(serial, parallel);
        assert_eq!(serial_reports, parallel_reports);
    }

    #[test]
    fn assignment_is_round_robin_and_stable() {
        let f = farm(4);
        for i in 0..32 {
            assert_eq!(f.assign(i), i % 4);
        }
        assert_eq!(f.shard_seed(2), f.shard_seed(2));
        assert_ne!(f.shard_seed(0), f.shard_seed(1));
    }

    #[test]
    fn job_errors_are_data_not_crashes() {
        let jobs = vec![
            Job::Program {
                source: "ADD r1, r1, r1, f0".into(),
                reads: vec![1],
            },
            Job::Requests(vec![HostMsg::ReadReg { reg: 200, tag: 7 }]),
        ];
        let mut f = farm(2);
        let out = f.run_parallel(&jobs).unwrap();
        assert!(out[0].output.is_ok());
        // An in-band device error surfaces as the response stream, not a
        // farm failure (drain_idle collects the Error message).
        match &out[1].output {
            Ok(JobOutput::Msgs(msgs)) => {
                assert!(matches!(msgs[0], DevMsg::Error { .. }), "{msgs:?}");
            }
            other => panic!("expected in-band error response, got {other:?}"),
        }
    }

    #[test]
    fn rollups_sum_over_shards() {
        let jobs = add_jobs(8);
        let mut f = farm(4);
        f.run_parallel(&jobs).unwrap();
        let reports = f.shard_reports();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports.iter().map(|r| r.jobs).sum::<u64>(), 8);
        let sim = f.sim_stats();
        assert_eq!(
            sim.cycles_simulated,
            reports.iter().map(|r| r.sim.cycles_simulated).sum::<u64>()
        );
        assert_eq!(f.total_cycles(), reports.iter().map(|r| r.cycles).sum());
        assert!(f.makespan_cycles() <= f.total_cycles());
        assert!(f.makespan_cycles() > 0);
    }

    #[test]
    fn reliable_farm_shards_see_independent_fault_streams() {
        let jobs = add_jobs(6);
        let mut f = Farm::standard_reliable(
            FarmConfig {
                shards: 2,
                seed: 0xFA12,
                ..FarmConfig::default()
            },
            CoprocConfig::default(),
            LinkModel::pcie_like(),
            Some(FaultModel::uniform(0, 100)),
        );
        let a = f.run_parallel(&jobs).unwrap();
        let ls = f.link_stats();
        assert!(
            ls.frames_dropped + ls.frames_corrupted + ls.frames_duplicated > 0,
            "faults must fire: {ls:?}"
        );
        // Reproducible run to run…
        let b = f.run_parallel(&jobs).unwrap();
        assert_eq!(a, b);
        // …and correct despite the faults.
        for r in &a {
            let msgs = match &r.output {
                Ok(JobOutput::Msgs(m)) => m,
                other => panic!("job failed under faults: {other:?}"),
            };
            // r3 = 0+0, r4 = r3+1, r5 = r4+r3.
            let values: Vec<u64> = msgs
                .iter()
                .map(|m| match m {
                    DevMsg::Data { value, .. } => value.as_u64(),
                    other => panic!("expected Data, got {other:?}"),
                })
                .collect();
            assert_eq!(values, vec![0, 1, 1]);
        }
    }

    #[test]
    fn scheduled_mode_agrees_with_gated_across_shard_counts() {
        // Reliable links with injected faults: idle shards wait on
        // retransmit deadlines, which the event wheel must fast-forward
        // to without changing a single response or cycle count.
        let jobs = add_jobs(6);
        let run = |mode: ActivityMode, shards: usize| {
            let mut f = Farm::standard_reliable(
                FarmConfig {
                    shards,
                    seed: 0x51ED,
                    activity_mode: mode,
                    ..FarmConfig::default()
                },
                CoprocConfig::default(),
                LinkModel::pcie_like(),
                Some(FaultModel::uniform(3, 120)),
            );
            let out = f.run_parallel(&jobs).unwrap();
            (out, f.total_cycles(), f.link_stats())
        };
        for shards in [1usize, 2, 3] {
            let gated = run(ActivityMode::Gated, shards);
            let sched = run(ActivityMode::Scheduled, shards);
            assert_eq!(gated, sched, "modes diverge at {shards} shards");
        }
    }

    /// A farm whose shard 1 hosts an armed [`PoisonFu`]: any job that
    /// dispatches with `0xDEAD` as its first operand kills that shard.
    /// Every other shard runs the identical unit unarmed.
    fn poisoned_farm(shards: usize, max_job_retries: u32) -> Farm {
        Farm::new(
            FarmConfig {
                shards,
                max_job_retries,
                ..FarmConfig::default()
            },
            |ctx| {
                let trigger = (ctx.index == 1).then_some(0xDEAD);
                System::new(
                    CoprocConfig::default(),
                    vec![Box::new(fu_rtm::testing::PoisonFu::new(
                        "poison", 1, 1, trigger,
                    ))],
                    LinkModel::ideal(),
                )
            },
        )
    }

    fn poison_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                Job::Requests(vec![
                    HostMsg::WriteReg {
                        reg: 1,
                        value: fu_isa::Word::from_u64(0xDEAD, 32),
                    },
                    HostMsg::Instr(fu_isa::InstrWord::user(fu_isa::UserInstr {
                        func: 1,
                        variety: 0,
                        dst_flag: 1,
                        dst_reg: 3,
                        aux_reg: 0,
                        src1: 1,
                        src2: 1,
                        src3: 0,
                    })),
                    HostMsg::ReadReg {
                        reg: 3,
                        tag: i as u16,
                    },
                ])
            })
            .collect()
    }

    #[test]
    fn panicked_shard_is_contained_and_rebuilt() {
        // No retry budget: the poisoned jobs fail as data, the farm
        // survives, and later jobs on the rebuilt shard still die to the
        // same trigger (the rebuild re-arms the poison) while every other
        // shard's jobs succeed.
        let jobs = poison_jobs(9);
        let mut f = poisoned_farm(3, 0);
        let out = f.run_parallel(&jobs).unwrap();
        for r in &out {
            if r.job % 3 == 1 {
                assert!(
                    matches!(r.output, Err(DriverError::Panicked(_))),
                    "job {} should have died on the poisoned shard: {:?}",
                    r.job,
                    r.output
                );
            } else {
                assert!(r.output.is_ok(), "job {} failed: {:?}", r.job, r.output);
            }
        }
        assert_eq!(f.sim_stats().recovery.jobs_failed_over, 0);
    }

    #[test]
    fn failover_reruns_poisoned_jobs_on_healthy_shards() {
        let jobs = poison_jobs(9);
        let mut f = poisoned_farm(3, 2);
        let out = f.run_parallel(&jobs).unwrap();
        for r in &out {
            assert!(r.output.is_ok(), "job {} failed: {:?}", r.job, r.output);
            if r.job % 3 == 1 {
                assert_eq!(r.shard, 2, "retry goes to the next shard round-robin");
            } else {
                assert_eq!(r.shard, r.job % 3);
            }
            match &r.output {
                Ok(JobOutput::Msgs(msgs)) => {
                    // r3 = 0xDEAD + 0xDEAD, computed wherever the job ran.
                    let last = msgs.last().expect("read response present");
                    assert!(
                        matches!(last, DevMsg::Data { value, .. } if value.as_u64() == 2 * 0xDEAD),
                        "job {}: {last:?}",
                        r.job
                    );
                }
                other => panic!("unexpected output {other:?}"),
            }
        }
        let rec = f.sim_stats().recovery;
        assert_eq!(rec.jobs_failed_over, 3, "jobs 1, 4, 7 were re-executed");
        assert_eq!(rec.job_retries, 3, "each needed exactly one retry");
    }

    #[test]
    fn failover_keeps_parallel_bit_identical_to_serial() {
        let jobs = poison_jobs(10);
        let mut f = poisoned_farm(3, 2);
        let serial = f.run_serial(&jobs).unwrap();
        let serial_rec = f.sim_stats().recovery;
        let serial_cycles: Vec<u64> = f.shard_reports().iter().map(|r| r.cycles).collect();
        let parallel = f.run_parallel(&jobs).unwrap();
        let parallel_rec = f.sim_stats().recovery;
        let parallel_cycles: Vec<u64> = f.shard_reports().iter().map(|r| r.cycles).collect();
        assert_eq!(serial, parallel);
        assert_eq!(serial_rec, parallel_rec);
        assert_eq!(serial_cycles, parallel_cycles);
    }

    #[test]
    fn retry_budget_bounds_attempts_on_persistent_failures() {
        // A single poisoned shard: every retry lands back on the rebuilt
        // (still armed) home shard and re-dies, so the job fails after
        // consuming its whole budget.
        let jobs = poison_jobs(2);
        let mut f = Farm::new(
            FarmConfig {
                shards: 1,
                max_job_retries: 3,
                ..FarmConfig::default()
            },
            |_ctx| {
                System::new(
                    CoprocConfig::default(),
                    vec![Box::new(fu_rtm::testing::PoisonFu::new(
                        "poison",
                        1,
                        1,
                        Some(0xDEAD),
                    ))],
                    LinkModel::ideal(),
                )
            },
        );
        let out = f.run_serial(&jobs).unwrap();
        for r in &out {
            assert!(
                matches!(r.output, Err(DriverError::Panicked(_))),
                "{:?}",
                r.output
            );
        }
        let rec = f.sim_stats().recovery;
        assert_eq!(rec.jobs_failed_over, 2);
        assert_eq!(rec.job_retries, 6, "every attempt of the budget consumed");
    }

    #[test]
    fn retryable_classification() {
        use rtl_sim::SimError;
        assert!(retryable(&Err(DriverError::Panicked("boom".into()))));
        assert!(retryable(&Err(DriverError::Timeout(SimError::Timeout {
            cycles: 1,
            waiting_for: "x".into()
        }))));
        assert!(retryable(&Err(DriverError::Device {
            code: ErrorCode::SoftError,
            info: 0
        })));
        assert!(!retryable(&Err(DriverError::Device {
            code: ErrorCode::FuTimeout,
            info: 0
        })));
        assert!(!retryable(&Err(DriverError::Protocol("p".into()))));
        assert!(!retryable(&Ok(JobOutput::Msgs(Vec::new()))));
    }

    /// One heavy program plus a stream of light ones. Under round-robin
    /// the heavy job's shard also receives every `shards`-th light job
    /// and convoys them; least-loaded placement parks the heavy job on
    /// its own shard and spreads the light jobs across the rest.
    fn convoy_jobs() -> Vec<Job> {
        let heavy: String = (0..240)
            .map(|i| format!("ADD r{}, r4, r5, f{}\n", i % 4, i % 4))
            .collect();
        let mut jobs = vec![Job::Program {
            source: heavy,
            reads: vec![0],
        }];
        for _ in 0..12 {
            jobs.push(Job::Program {
                source: "ADD r0, r4, r5, f0\n ADD r1, r4, r5, f1".into(),
                reads: vec![0],
            });
        }
        jobs
    }

    #[test]
    fn job_cost_tracks_payload_size() {
        assert_eq!(convoy_jobs()[0].cost(), 241);
        assert_eq!(convoy_jobs()[1].cost(), 3);
        assert_eq!(Job::Requests(vec![]).cost(), 1, "cost is never zero");
        assert_eq!(Job::XiSort(vec![1, 2, 3]).cost(), 12);
        // Comment and blank lines don't count as work.
        let j = Job::Program {
            source: "; comment\n\nADD r0, r1, r2, f0".into(),
            reads: Vec::new(),
        };
        assert_eq!(j.cost(), 1);
    }

    #[test]
    fn least_loaded_plan_isolates_the_heavy_job() {
        let jobs = convoy_jobs();
        let f = Farm::standard(
            FarmConfig {
                shards: 3,
                placement: Placement::LeastLoaded,
                ..FarmConfig::default()
            },
            CoprocConfig::default(),
            LinkModel::pcie_like(),
        );
        let plan = f.plan(&jobs);
        assert_eq!(plan[0], 0, "first job claims the least-loaded shard");
        // The heavy job outweighs all light jobs together, so no light
        // job may be queued behind it.
        assert!(
            plan[1..].iter().all(|&s| s != 0),
            "light jobs routed onto the heavy shard: {plan:?}"
        );
    }

    #[test]
    fn least_loaded_breaks_the_round_robin_convoy() {
        let jobs = convoy_jobs();
        let mut makespans = Vec::new();
        for placement in [Placement::RoundRobin, Placement::LeastLoaded] {
            let mut f = Farm::standard(
                FarmConfig {
                    shards: 3,
                    placement,
                    ..FarmConfig::default()
                },
                CoprocConfig::default(),
                LinkModel::pcie_like(),
            );
            let out = f.run_parallel(&jobs).unwrap();
            for r in &out {
                assert!(r.output.is_ok(), "job {} failed: {:?}", r.job, r.output);
                assert!(r.cycles > 0, "per-job cycle accounting missing");
            }
            makespans.push(f.makespan_cycles());
        }
        assert!(
            makespans[1] < makespans[0],
            "least-loaded {} should beat round-robin {} on a convoyed batch",
            makespans[1],
            makespans[0]
        );
    }

    #[test]
    fn least_loaded_parallel_matches_serial() {
        let jobs = convoy_jobs();
        let mut f = Farm::standard(
            FarmConfig {
                shards: 3,
                placement: Placement::LeastLoaded,
                ..FarmConfig::default()
            },
            CoprocConfig::default(),
            LinkModel::pcie_like(),
        );
        let serial = f.run_serial(&jobs).unwrap();
        let parallel = f.run_parallel(&jobs).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn per_job_cycles_sum_to_shard_cycles() {
        let jobs = add_jobs(9);
        let mut f = farm(3);
        let out = f.run_parallel(&jobs).unwrap();
        let mut per_shard = vec![0u64; 3];
        for r in &out {
            per_shard[r.shard] += r.cycles;
        }
        for (report, expect) in f.shard_reports().iter().zip(&per_shard) {
            assert_eq!(
                report.cycles, *expect,
                "shard cycle counter must equal the sum of its job deltas"
            );
        }
    }

    #[test]
    fn zero_shards_is_an_error() {
        let mut f = Farm::standard(
            FarmConfig {
                shards: 0,
                ..FarmConfig::default()
            },
            CoprocConfig::default(),
            LinkModel::ideal(),
        );
        assert_eq!(f.run_serial(&[]), Err(FarmError::NoShards));
        assert_eq!(f.run_parallel(&[]), Err(FarmError::NoShards));
    }
}
