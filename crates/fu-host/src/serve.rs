//! Multi-tenant serving front-end over the coprocessor [`Farm`].
//!
//! The paper's framework assumes many host processes sharing the FPGA's
//! functional units; Lin et al. (PAPERS.md) make the same point for
//! chip-multiprocessor integration — an accelerator earns its area only
//! when *many* clients can share it cheaply. The farm (PR 3) gave us the
//! hardware-facing half of that story: N shards, deterministic batch
//! execution. This module adds the client-facing half — a service that
//! multiplexes thousands of concurrent sessions onto the shard pool:
//!
//! * **Per-tenant submission queues** with a bounded depth. Admission
//!   control is in-band: a full queue returns [`Admission::Overloaded`]
//!   to the caller instead of growing memory or silently dropping work.
//! * **Deficit-round-robin fairness.** Each scheduling round walks the
//!   tenants from a rotating cursor, crediting `quantum × weight` cost
//!   units per visit; a tenant dispatches jobs while its deficit covers
//!   their [`Job::cost`]. Under saturation every backlogged tenant's
//!   admitted-work share converges to its weight share, regardless of
//!   how unevenly traffic arrives.
//! * **Session → job-batch compilation.** The service never touches the
//!   deterministic core: admitted jobs are compiled into ordinary farm
//!   batches and executed through [`Farm::run_parallel`] /
//!   [`Farm::run_serial`] unchanged, so every bit-identity proof about
//!   shards (modes, threading, faults, recovery) carries over verbatim.
//! * **Virtual-clock poll loop.** The service keeps an explicit virtual
//!   clock in simulated cycles: a round *starts* when the farm is free
//!   and work is waiting, and *ends* `makespan` cycles later. Arrivals
//!   carry their own ticks (open-loop), so offered load, queueing delay
//!   and shedding interact exactly as in a real server — but every
//!   decision is a pure function of the submission sequence, never of
//!   host wall-clock or thread timing.
//! * **Per-tenant SLO accounting** on the existing log2-bucket
//!   histograms ([`rtl_sim::TenantCounters`], with the same `Add`/`Sum`
//!   rollups as the farm's shard stats): p50/p99 submission→completion
//!   latency, throughput, shed rate.
//!
//! The [`workload`] submodule provides the seeded open-loop generator
//! (Zipf-skewed tenant sizes, splitmix64-keyed arrivals — the same
//! derivation discipline as the link fault model) used by the E17 bench
//! and the serving test battery.

use std::collections::VecDeque;

use crate::driver::DriverError;
use crate::farm::{Farm, FarmError, Job, JobOutput};
use crate::link::LinkStats;
use rtl_sim::{Percentiles, ServeStats, SimStats, TenantCounters};

/// Tenant identity: an index into the service's tenant table.
pub type TenantId = u32;

/// One tenant of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Human-readable name (reports and demos).
    pub name: String,
    /// Deficit-round-robin weight. Must be ≥ 1; under saturation a
    /// tenant's admitted-work share converges to `weight / Σ weights`.
    pub weight: u32,
}

impl TenantSpec {
    /// A tenant with the given name and weight (clamped to ≥ 1).
    pub fn new(name: impl Into<String>, weight: u32) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: weight.max(1),
        }
    }
}

/// Service-level knobs. The shard pool itself is configured on the
/// [`Farm`] passed to [`Service::new`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-tenant submission-queue bound. A submit that would exceed it
    /// is rejected in-band with [`Admission::Overloaded`] — that is the
    /// load shedding, not an error.
    pub queue_depth: usize,
    /// Deficit-round-robin quantum: cost units credited per tenant visit
    /// per weight unit. Larger quanta lower scheduling overhead but
    /// coarsen fairness granularity.
    pub quantum: u64,
    /// Maximum jobs dispatched to the farm per scheduling round.
    pub round_jobs: usize,
    /// Execute rounds through [`Farm::run_parallel`] (`true`) or
    /// [`Farm::run_serial`] (`false`). Bit-identical either way — the
    /// farm's core contract — so this only trades host wall-clock.
    pub parallel: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_depth: 64,
            quantum: 8,
            round_jobs: 64,
            parallel: true,
        }
    }
}

/// The in-band answer to a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The job was queued; its completion will carry `seq`.
    Admitted {
        /// Service-wide submission sequence number.
        seq: u64,
    },
    /// The tenant's queue is full; the job was rejected (shed). The
    /// caller may retry later — nothing was enqueued.
    Overloaded {
        /// The tenant whose queue was full.
        tenant: TenantId,
        /// The configured bound that was hit.
        queue_depth: usize,
    },
}

/// One finished job, delivered through [`Service::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The sequence number [`Admission::Admitted`] returned.
    pub seq: u64,
    /// The tenant that submitted the job.
    pub tenant: TenantId,
    /// Submission tick, in virtual cycles.
    pub submitted_at: u64,
    /// Completion time, in virtual cycles (round start + the shard-local
    /// prefix of job execution within the round).
    pub completed_at: u64,
    /// Shard cycles the job's execution consumed.
    pub cycles: u64,
    /// The shard that executed the job.
    pub shard: usize,
    /// Responses, or the driver error the job failed with (errors are
    /// data — a failing job is *completed*, never lost).
    pub output: Result<JobOutput, DriverError>,
}

/// Per-tenant service-level objective snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant id.
    pub tenant: TenantId,
    /// Tenant name.
    pub name: String,
    /// DRR weight.
    pub weight: u32,
    /// Jobs offered / accepted / rejected / completed / failed.
    pub submitted: u64,
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Jobs rejected at admission.
    pub shed: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that completed with an error.
    pub failed: u64,
    /// Submission→completion latency percentiles, in virtual cycles.
    pub latency: Percentiles,
    /// Mean submission→completion latency, in virtual cycles.
    pub mean_latency: f64,
    /// Completed operations per second at `clock_mhz`.
    pub ops_per_sec: f64,
    /// Fraction of submitted jobs shed, in `[0, 1]`.
    pub shed_rate: f64,
}

struct Lane {
    spec: TenantSpec,
    deficit: u64,
    queue: VecDeque<Pending>,
}

struct Pending {
    seq: u64,
    tenant: TenantId,
    arrival: u64,
    cost: u64,
    job: Job,
}

/// The serving front-end. See the module docs for the model.
pub struct Service {
    cfg: ServeConfig,
    farm: Farm,
    lanes: Vec<Lane>,
    /// Virtual clock: the cycle at which the farm becomes free.
    clock: u64,
    /// Highest submission tick seen (ticks must be monotone).
    last_tick: u64,
    next_seq: u64,
    /// Rotating DRR start position, advanced once per round so no tenant
    /// permanently enjoys first-scan advantage.
    cursor: usize,
    completions: Vec<Completion>,
    stats: ServeStats,
    sim: SimStats,
    link: LinkStats,
}

impl Service {
    /// A service multiplexing `tenants` onto `farm`.
    ///
    /// # Errors
    /// [`FarmError::NoShards`] when the farm has no shards; a service
    /// needs at least one tenant, enforced by panic (a configuration
    /// bug, not a runtime condition).
    pub fn new(
        cfg: ServeConfig,
        tenants: Vec<TenantSpec>,
        farm: Farm,
    ) -> Result<Service, FarmError> {
        if farm.config().shards == 0 {
            return Err(FarmError::NoShards);
        }
        assert!(!tenants.is_empty(), "a service needs at least one tenant");
        let lanes = tenants
            .into_iter()
            .map(|spec| Lane {
                spec: TenantSpec::new(spec.name, spec.weight),
                deficit: 0,
                queue: VecDeque::new(),
            })
            .collect();
        Ok(Service {
            cfg,
            farm,
            lanes,
            clock: 0,
            last_tick: 0,
            next_seq: 0,
            cursor: 0,
            completions: Vec::new(),
            stats: ServeStats::default(),
            sim: SimStats::default(),
            link: LinkStats::default(),
        })
    }

    /// Service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.lanes.len()
    }

    /// The virtual clock, in cycles: when the farm becomes free.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// True when no admitted job is still queued.
    pub fn is_idle(&self) -> bool {
        self.lanes.iter().all(|l| l.queue.is_empty())
    }

    /// Jobs admitted but not yet dispatched, across all tenants.
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// Completions produced but not yet collected by [`Service::poll`].
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// Submit one job for `tenant` at virtual time `tick` (cycles).
    /// Ticks must be non-decreasing across calls; the open-loop contract
    /// is that the *caller* owns the arrival process.
    ///
    /// Before admission the service first runs every scheduling round
    /// that would have started strictly before `tick` — this is what
    /// makes queue state (and therefore shedding) a function of offered
    /// load rather than of call batching.
    ///
    /// # Errors
    /// [`FarmError`] on orchestration failures inside a round. Shedding
    /// is *not* an error: it returns [`Admission::Overloaded`].
    pub fn submit(
        &mut self,
        tenant: TenantId,
        tick: u64,
        job: Job,
    ) -> Result<Admission, FarmError> {
        assert!(
            (tenant as usize) < self.lanes.len(),
            "unknown tenant {tenant}"
        );
        let tick = tick.max(self.last_tick);
        self.last_tick = tick;
        self.advance_to(tick)?;
        let cost = job.cost();
        let counters = self.stats.tenant_mut(tenant);
        counters.submitted += 1;
        let lane = &mut self.lanes[tenant as usize];
        if lane.queue.len() >= self.cfg.queue_depth.max(1) {
            self.stats.tenant_mut(tenant).shed += 1;
            return Ok(Admission::Overloaded {
                tenant,
                queue_depth: self.cfg.queue_depth.max(1),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.tenant_mut(tenant).admitted += 1;
        self.lanes[tenant as usize].queue.push_back(Pending {
            seq,
            tenant,
            arrival: tick,
            cost,
            job,
        });
        Ok(Admission::Admitted { seq })
    }

    /// Collect every completion produced since the last poll, in
    /// dispatch order. Non-blocking; polling is pure observation, so any
    /// interleaving of `poll` with `submit` leaves behaviour unchanged.
    pub fn poll(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Drop everything `tenant` still has queued (a mid-session
    /// disconnect). Cancelled jobs are accounted, never silently lost.
    pub fn disconnect(&mut self, tenant: TenantId) {
        assert!(
            (tenant as usize) < self.lanes.len(),
            "unknown tenant {tenant}"
        );
        let lane = &mut self.lanes[tenant as usize];
        let dropped = lane.queue.len() as u64;
        lane.queue.clear();
        lane.deficit = 0;
        self.stats.tenant_mut(tenant).cancelled += dropped;
    }

    /// Run every scheduling round that would start strictly before
    /// `tick`. Splitting one call into many (or interleaving with
    /// `poll`) cannot change any outcome: rounds are replayed in the
    /// same order with the same start times either way.
    ///
    /// # Errors
    /// [`FarmError`] on orchestration failures inside a round.
    pub fn advance_to(&mut self, tick: u64) -> Result<(), FarmError> {
        self.last_tick = self.last_tick.max(tick);
        loop {
            let Some(oldest) = self.oldest_arrival() else {
                return Ok(());
            };
            let start = self.clock.max(oldest);
            if start >= tick {
                return Ok(());
            }
            self.run_round(start)?;
        }
    }

    /// Flush: run rounds until every queue is empty, then return all
    /// uncollected completions.
    ///
    /// # Errors
    /// [`FarmError`] on orchestration failures inside a round.
    pub fn drain(&mut self) -> Result<Vec<Completion>, FarmError> {
        while let Some(oldest) = self.oldest_arrival() {
            let start = self.clock.max(oldest);
            self.run_round(start)?;
        }
        Ok(self.poll())
    }

    /// Tenant-keyed serving statistics (rounds, dispatches, per-tenant
    /// counters with latency histograms). Merges across services with
    /// `+`/`sum()` like every other stats block.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Scheduler statistics summed over every round's farm run.
    pub fn sim_stats(&self) -> &SimStats {
        &self.sim
    }

    /// Link/transport statistics summed over every round's farm run.
    pub fn link_stats(&self) -> LinkStats {
        self.link
    }

    /// Per-tenant SLO snapshot at the FPGA clock `clock_mhz`.
    pub fn slo(&self, clock_mhz: f64) -> Vec<TenantSlo> {
        let elapsed_secs = if self.clock == 0 {
            0.0
        } else {
            self.clock as f64 / (clock_mhz * 1e6)
        };
        self.lanes
            .iter()
            .enumerate()
            .map(|(id, lane)| {
                let id = id as TenantId;
                let empty = TenantCounters::default();
                let c = self.stats.tenant(id).unwrap_or(&empty);
                TenantSlo {
                    tenant: id,
                    name: lane.spec.name.clone(),
                    weight: lane.spec.weight,
                    submitted: c.submitted,
                    admitted: c.admitted,
                    shed: c.shed,
                    completed: c.completed,
                    failed: c.failed,
                    latency: c.latency.percentiles(),
                    mean_latency: c.latency.mean(),
                    ops_per_sec: if elapsed_secs == 0.0 {
                        0.0
                    } else {
                        c.completed as f64 / elapsed_secs
                    },
                    shed_rate: c.shed_rate(),
                }
            })
            .collect()
    }

    fn oldest_arrival(&self) -> Option<u64> {
        self.lanes
            .iter()
            .filter_map(|l| l.queue.front().map(|p| p.arrival))
            .min()
    }

    /// Deficit-round-robin selection of at most `round_jobs` queued jobs
    /// whose arrival is at or before `start`. Standard DRR: credit
    /// `quantum × weight` per visit, dispatch while the deficit covers
    /// the head-of-line cost, reset the deficit when the queue empties.
    /// Deficits grow every pass, so whenever an eligible job exists the
    /// selection is non-empty and the loop terminates.
    fn drr_select(&mut self, start: u64) -> Vec<Pending> {
        let n = self.lanes.len();
        let max_jobs = self.cfg.round_jobs.max(1);
        let quantum = self.cfg.quantum.max(1);
        let mut out = Vec::new();
        let first = self.cursor % n;
        loop {
            let mut any_eligible = false;
            for k in 0..n {
                let lane = &mut self.lanes[(first + k) % n];
                let eligible = lane.queue.front().is_some_and(|p| p.arrival <= start);
                if !eligible {
                    if lane.queue.is_empty() {
                        lane.deficit = 0;
                    }
                    continue;
                }
                any_eligible = true;
                lane.deficit = lane
                    .deficit
                    .saturating_add(quantum * u64::from(lane.spec.weight));
                while out.len() < max_jobs {
                    match lane.queue.front() {
                        Some(p) if p.arrival <= start && p.cost <= lane.deficit => {
                            lane.deficit -= p.cost;
                            out.push(lane.queue.pop_front().expect("front just matched"));
                        }
                        _ => break,
                    }
                }
                if lane.queue.is_empty() {
                    lane.deficit = 0;
                }
                if out.len() >= max_jobs {
                    break;
                }
            }
            if !any_eligible || out.len() >= max_jobs {
                break;
            }
        }
        self.cursor = (first + 1) % n;
        out
    }

    /// Execute one scheduling round starting at virtual cycle `start`:
    /// DRR-select a batch, run it through the farm (placement and
    /// failover included), timestamp completions by shard-local prefix,
    /// fold the farm's stats into the service rollups and advance the
    /// clock by the round's makespan.
    fn run_round(&mut self, start: u64) -> Result<(), FarmError> {
        let selected = self.drr_select(start);
        debug_assert!(
            !selected.is_empty(),
            "run_round called with an eligible job pending"
        );
        if selected.is_empty() {
            return Ok(());
        }
        let jobs: Vec<Job> = selected.iter().map(|p| p.job.clone()).collect();
        let results = if self.cfg.parallel {
            self.farm.run_parallel(&jobs)?
        } else {
            self.farm.run_serial(&jobs)?
        };
        self.stats.rounds += 1;
        self.stats.dispatched += jobs.len() as u64;
        self.sim += self.farm.sim_stats();
        self.link += self.farm.link_stats();
        // Completion times: shards execute their jobs in plan order, so a
        // job finishes at `start` plus the cycles of everything before it
        // on its shard. (Failed-over jobs are timed on their retry shard;
        // the lost first attempt is already counted in the makespan.)
        let mut shard_busy = vec![0u64; self.farm.config().shards];
        for (i, (r, p)) in results.into_iter().zip(selected).enumerate() {
            debug_assert_eq!(r.job, i, "farm returns results in job order");
            shard_busy[r.shard] += r.cycles;
            let completed_at = start + shard_busy[r.shard];
            let counters = self.stats.tenant_mut(p.tenant);
            match &r.output {
                Ok(_) => counters.completed += 1,
                Err(_) => counters.failed += 1,
            }
            counters.work_cycles += r.cycles;
            counters.work_cost += p.cost;
            counters.latency.record(completed_at - p.arrival);
            self.completions.push(Completion {
                seq: p.seq,
                tenant: p.tenant,
                submitted_at: p.arrival,
                completed_at,
                cycles: r.cycles,
                shard: r.shard,
                output: r.output,
            });
        }
        self.clock = start + self.farm.makespan_cycles();
        Ok(())
    }
}

pub mod workload {
    //! Seeded open-loop workload generation for the serving layer.
    //!
    //! Tenant sizes follow a Zipf(1) law computed in pure integer
    //! arithmetic (weight of rank *r* ∝ 1/(r+1)) so the traffic mix is
    //! bit-stable across platforms; per-client arrival processes are
    //! keyed by splitmix64 exactly like the link fault model, so the
    //! same spec always produces the same arrival sequence.

    use super::TenantId;
    use crate::farm::Job;
    use fu_isa::{HostMsg, InstrWord, UserInstr, Word};

    /// splitmix64 (the farm/fault-model generator).
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Open-loop workload shape.
    #[derive(Debug, Clone, Copy)]
    pub struct WorkloadSpec {
        /// Simulated client sessions.
        pub clients: usize,
        /// Tenants the clients are distributed over (Zipf-skewed).
        pub tenants: u32,
        /// Jobs each client submits.
        pub jobs_per_client: usize,
        /// Mean inter-arrival gap per client, in cycles. Smaller means
        /// higher offered load.
        pub mean_gap: u64,
        /// Master seed; every derived quantity is keyed off it.
        pub seed: u64,
    }

    impl Default for WorkloadSpec {
        fn default() -> WorkloadSpec {
            WorkloadSpec {
                clients: 10_000,
                tenants: 16,
                jobs_per_client: 2,
                mean_gap: 40_000,
                seed: 0xE17,
            }
        }
    }

    /// One client submission.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Arrival {
        /// Arrival tick, in virtual cycles.
        pub tick: u64,
        /// The tenant this client belongs to.
        pub tenant: TenantId,
        /// Client id (stable across the run).
        pub client: u64,
        /// The compiled job: write two operands, add, read the sum back.
        pub job: Job,
        /// The expected value of the readback — lets tests verify every
        /// completion against ground truth without re-deriving it.
        pub expect: u64,
    }

    /// Integer Zipf(1) tenant weights: rank `r` gets `2^16 / (r+1)`.
    pub fn zipf_weights(tenants: u32) -> Vec<u64> {
        (0..tenants)
            .map(|r| (1u64 << 16) / (u64::from(r) + 1))
            .collect()
    }

    /// The tenant a uniform draw `u` lands on under `weights`.
    fn pick(weights: &[u64], mut u: u64) -> TenantId {
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i as TenantId;
            }
            u -= w;
        }
        (weights.len() - 1) as TenantId
    }

    /// The self-contained arithmetic job every simulated client submits:
    /// write `x` and `y`, add them into r3, read r3 back under `tag`.
    /// Self-contained means the result never depends on what ran on the
    /// shard before it — the property the serving determinism battery
    /// leans on.
    pub fn client_job(x: u32, y: u32, tag: u16) -> (Job, u64) {
        let msgs = vec![
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(u64::from(x), 32),
            },
            HostMsg::WriteReg {
                reg: 2,
                value: Word::from_u64(u64::from(y), 32),
            },
            HostMsg::Instr(InstrWord::user(UserInstr {
                func: fu_isa::funit_codes::ARITH,
                variety: fu_isa::ArithOp::Add.variety().0,
                dst_flag: 1,
                dst_reg: 3,
                aux_reg: 0,
                src1: 1,
                src2: 2,
                src3: 0,
            })),
            HostMsg::ReadReg { reg: 3, tag },
        ];
        let expect = (u64::from(x) + u64::from(y)) & 0xffff_ffff;
        (Job::Requests(msgs), expect)
    }

    /// Generate the full arrival sequence: every client gets a tenant
    /// (Zipf over ranks), an arrival process (uniform gaps with the
    /// configured mean, keyed per client), and a stream of
    /// self-contained jobs. Returned sorted by `(tick, client, k)` — the
    /// submission order a front-end would observe.
    pub fn open_loop(spec: &WorkloadSpec) -> Vec<Arrival> {
        assert!(spec.tenants >= 1, "need at least one tenant");
        let weights = zipf_weights(spec.tenants);
        let total: u64 = weights.iter().sum();
        let mut out = Vec::with_capacity(spec.clients * spec.jobs_per_client);
        for c in 0..spec.clients as u64 {
            let key = splitmix64(spec.seed ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let tenant = pick(&weights, splitmix64(key) % total);
            let mut tick = 0u64;
            for k in 0..spec.jobs_per_client as u64 {
                let h = splitmix64(key ^ (k + 1).wrapping_mul(0xD129_42E2_96FE_945F));
                // Uniform gap in [1, 2·mean]: mean ≈ mean_gap, strictly
                // positive so per-client submissions are ordered.
                tick += 1 + h % (2 * spec.mean_gap.max(1));
                let x = (splitmix64(h) & 0xffff) as u32;
                let y = ((splitmix64(h) >> 16) & 0xffff) as u32;
                let (job, expect) = client_job(x, y, (h & 0xffff) as u16);
                out.push(Arrival {
                    tick,
                    tenant,
                    client: c,
                    job,
                    expect,
                });
            }
        }
        out.sort_by_key(|a| (a.tick, a.client, a.expect));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::workload::{client_job, open_loop, zipf_weights, WorkloadSpec};
    use super::*;
    use crate::farm::{FarmConfig, Placement};
    use crate::link::LinkModel;
    use fu_rtm::CoprocConfig;

    fn service(shards: usize, tenants: &[u32], cfg: ServeConfig) -> Service {
        let farm = Farm::standard(
            FarmConfig {
                shards,
                placement: Placement::LeastLoaded,
                ..FarmConfig::default()
            },
            CoprocConfig::default(),
            LinkModel::pcie_like(),
        );
        let specs = tenants
            .iter()
            .enumerate()
            .map(|(i, &w)| TenantSpec::new(format!("t{i}"), w))
            .collect();
        Service::new(cfg, specs, farm).unwrap()
    }

    #[test]
    fn jobs_complete_with_expected_results() {
        let mut svc = service(2, &[1, 1], ServeConfig::default());
        let (job, expect) = client_job(40, 2, 7);
        let adm = svc.submit(0, 0, job).unwrap();
        assert_eq!(adm, Admission::Admitted { seq: 0 });
        let done = svc.drain().unwrap();
        assert_eq!(done.len(), 1);
        let c = &done[0];
        assert_eq!(c.seq, 0);
        assert_eq!(c.tenant, 0);
        assert!(c.cycles > 0);
        assert!(c.completed_at >= c.submitted_at + c.cycles);
        match &c.output {
            Ok(JobOutput::Msgs(msgs)) => match &msgs[..] {
                [fu_isa::DevMsg::Data { tag: 7, value }] => {
                    assert_eq!(value.as_u64(), expect);
                }
                other => panic!("unexpected responses {other:?}"),
            },
            other => panic!("job failed: {other:?}"),
        }
        assert!(svc.is_idle());
        assert_eq!(svc.stats().totals().completed, 1);
    }

    #[test]
    fn full_queue_sheds_in_band() {
        let cfg = ServeConfig {
            queue_depth: 2,
            ..ServeConfig::default()
        };
        let mut svc = service(1, &[1], cfg);
        // Same tick for all three: no round can run in between.
        for seq in 0..2 {
            let (job, _) = client_job(1, 2, seq as u16);
            assert_eq!(svc.submit(0, 5, job).unwrap(), Admission::Admitted { seq });
        }
        let (job, _) = client_job(1, 2, 9);
        assert_eq!(
            svc.submit(0, 5, job).unwrap(),
            Admission::Overloaded {
                tenant: 0,
                queue_depth: 2
            }
        );
        let done = svc.drain().unwrap();
        assert_eq!(done.len(), 2, "shed job must not appear as a completion");
        let c = svc.stats().totals();
        assert_eq!((c.submitted, c.admitted, c.shed), (3, 2, 1));
    }

    #[test]
    fn drr_shares_track_weights_under_saturation() {
        // Three tenants at weights 1/2/4, all fully backlogged at tick 0
        // with equal-cost jobs: admitted work must split ≈ 1:2:4.
        let cfg = ServeConfig {
            queue_depth: 600,
            quantum: 4,
            round_jobs: 16,
            parallel: false,
        };
        let mut svc = service(2, &[1, 2, 4], cfg);
        for i in 0..180 {
            for t in 0..3 {
                let (job, _) = client_job(i, t, (i % 100) as u16);
                svc.submit(t, 0, job).unwrap();
            }
        }
        // Dispatch a fixed number of rounds by advancing time, then look
        // at the split of dispatched work while all lanes are still
        // backlogged.
        while svc.stats().dispatched < 160 {
            // One round per call: the round starting at `clock` is the
            // only one scheduled strictly before `clock + 1`.
            let clock = svc.clock();
            svc.advance_to(clock + 1).unwrap();
        }
        assert!(
            svc.lanes.iter().all(|l| !l.queue.is_empty()),
            "fairness is only defined while every tenant stays backlogged"
        );
        let w = [1.0, 2.0, 4.0];
        let total_w: f64 = w.iter().sum();
        let dispatched: u64 = (0..3)
            .map(|t| svc.stats().tenant(t).unwrap().work_cost)
            .sum();
        for t in 0..3u32 {
            let share = svc.stats().tenant(t).unwrap().work_cost as f64 / dispatched as f64;
            let ideal = w[t as usize] / total_w;
            assert!(
                (share - ideal).abs() < 0.08,
                "tenant {t}: share {share:.3} vs ideal {ideal:.3}"
            );
        }
    }

    #[test]
    fn disconnect_cancels_queued_jobs() {
        let mut svc = service(1, &[1, 1], ServeConfig::default());
        for i in 0..4 {
            let (job, _) = client_job(i, i, i as u16);
            svc.submit(0, 3, job).unwrap();
        }
        let (job, _) = client_job(9, 9, 99);
        svc.submit(1, 3, job).unwrap();
        svc.disconnect(0);
        let done = svc.drain().unwrap();
        assert_eq!(done.len(), 1, "only the surviving tenant's job ran");
        assert_eq!(done[0].tenant, 1);
        let c = svc.stats().tenant(0).unwrap();
        assert_eq!(c.cancelled, 4);
        assert_eq!(c.in_queue(), 0);
        assert!(svc.is_idle());
    }

    #[test]
    fn poll_interleaving_is_unobservable() {
        let arrivals = open_loop(&WorkloadSpec {
            clients: 60,
            tenants: 3,
            jobs_per_client: 2,
            mean_gap: 3_000,
            seed: 42,
        });
        let run = |poll_every: usize| {
            let mut svc = service(
                2,
                &[1, 2, 4],
                ServeConfig {
                    queue_depth: 8,
                    ..ServeConfig::default()
                },
            );
            let mut done = Vec::new();
            let mut sheds = Vec::new();
            for (i, a) in arrivals.iter().enumerate() {
                if let Admission::Overloaded { .. } =
                    svc.submit(a.tenant, a.tick, a.job.clone()).unwrap()
                {
                    sheds.push(i);
                }
                if poll_every > 0 && i % poll_every == 0 {
                    done.extend(svc.poll());
                }
            }
            done.extend(svc.drain().unwrap());
            (done, sheds, svc.clock(), svc.stats().clone())
        };
        let a = run(0);
        let b = run(1);
        let c = run(7);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn zipf_weights_are_skewed_and_deterministic() {
        let w = zipf_weights(8);
        assert_eq!(w.len(), 8);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        assert_eq!(w[0], 1 << 16);
        assert_eq!(w[1], 1 << 15);
        let spec = WorkloadSpec {
            clients: 500,
            tenants: 8,
            ..WorkloadSpec::default()
        };
        let a = open_loop(&spec);
        assert_eq!(a, open_loop(&spec), "generator must replay exactly");
        assert_eq!(a.len(), 500 * spec.jobs_per_client);
        assert!(a.windows(2).all(|p| p[0].tick <= p[1].tick));
        // The head tenant dominates the tail tenant.
        let count = |t: TenantId| a.iter().filter(|x| x.tenant == t).count();
        assert!(count(0) > 4 * count(7), "Zipf skew missing");
    }

    #[test]
    fn slo_snapshot_is_populated() {
        let mut svc = service(2, &[1, 4], ServeConfig::default());
        let arrivals = open_loop(&WorkloadSpec {
            clients: 40,
            tenants: 2,
            jobs_per_client: 2,
            mean_gap: 2_000,
            seed: 7,
        });
        for a in &arrivals {
            svc.submit(a.tenant, a.tick, a.job.clone()).unwrap();
        }
        svc.drain().unwrap();
        let slo = svc.slo(50.0);
        assert_eq!(slo.len(), 2);
        for s in &slo {
            assert_eq!(s.submitted, s.admitted + s.shed);
            assert_eq!(s.failed, 0);
            if s.completed > 0 {
                assert!(s.latency.p99 >= s.latency.p50);
                assert!(s.ops_per_sec > 0.0);
            }
        }
        assert_eq!(
            slo.iter().map(|s| s.completed).sum::<u64>(),
            arrivals.len() as u64
        );
        assert!(svc.sim_stats().cycles_simulated > 0);
        // A bare fault-free link keeps all transport counters at zero.
        assert_eq!(svc.link_stats(), LinkStats::default());
    }
}
