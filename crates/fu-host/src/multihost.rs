//! Multiple host CPUs sharing one coprocessor (paper Figure 1.1).
//!
//! "The main purpose of the presented framework is to facilitate the
//! development of FPGA based coprocessors by providing a common interface
//! to hardware accelerators **accessible by one or more host CPUs**
//! running standard software." The figure shows CPU #1 … CPU #m attached
//! to the single generic interface.
//!
//! [`MultiHostSystem`] gives each host its own link pair and merges the
//! inbound streams at **message granularity** with a round-robin arbiter
//! (frames of one message are never interleaved with another host's — the
//! receiver-side arbiter a real multi-port transceiver needs). Responses
//! are routed by tag: the top [`MultiHostSystem::host_bits`] bits of every
//! tag carry the issuing host's index, a convention the per-host drivers
//! enforce. Error responses carry no tag and are delivered to host 0,
//! which acts as the management CPU — a documented design decision.

use std::collections::VecDeque;

use crate::link::{FaultModel, Link, LinkModel, LinkStats};
use fu_isa::msg::{DevDeframer, HostDeframer};
use fu_isa::transport::{Endpoint, TransportConfig};
use fu_isa::{DevMsg, HostMsg, Tag};
use fu_rtm::{ActivityMode, CoprocConfig, Coprocessor, FunctionalUnit, QuietVerdict};
use rtl_sim::area::log2_ceil;
use rtl_sim::{SimError, SimStats};

struct HostPort {
    to_dev: Link,
    to_host: Link,
    /// Frames queued on the host, awaiting link bandwidth.
    tx: VecDeque<u32>,
    /// Device-edge reassembly of this host's messages.
    edge: HostDeframer,
    /// Complete messages awaiting injection into the coprocessor.
    inject: VecDeque<HostMsg>,
    /// Host-side response reassembly.
    rx: DevDeframer,
    /// Fully received responses.
    responses: VecDeque<DevMsg>,
    /// Frames routed to this host, awaiting link bandwidth on the
    /// device side.
    pending_out: VecDeque<u32>,
    /// Reliable endpoints at either end of this port's link pair, `None`
    /// for the bare link. The device-side endpoint lives at the
    /// multi-port transceiver edge — the shared coprocessor stays bare.
    host_ep: Option<Endpoint>,
    dev_ep: Option<Endpoint>,
}

/// `m` host CPUs sharing one coprocessor.
pub struct MultiHostSystem {
    coproc: Coprocessor,
    ports: Vec<HostPort>,
    /// Transmit-side demultiplexer: reassembles device messages so they
    /// can be routed whole to the owning host's link.
    route: DevDeframer,
    /// Frames of the message currently being injected.
    injecting: VecDeque<u32>,
    rr: usize,
    cycle: u64,
    word_bits: u32,
    host_bits: u32,
}

impl MultiHostSystem {
    /// Assemble a system with `n_hosts` identical links.
    ///
    /// # Errors
    /// Propagates configuration errors; rejects `n_hosts == 0` and hosts
    /// beyond the tag space.
    pub fn new(
        mut cfg: CoprocConfig,
        units: Vec<Box<dyn FunctionalUnit>>,
        link: LinkModel,
        n_hosts: usize,
    ) -> Result<MultiHostSystem, SimError> {
        if n_hosts == 0 {
            return Err(SimError::Config("at least one host required".into()));
        }
        let host_bits = log2_ceil(n_hosts.max(2) as u64) as u32;
        if host_bits > 8 {
            return Err(SimError::Config("too many hosts for the tag space".into()));
        }
        cfg.rx_frames_per_cycle = link.port_frames_per_cycle;
        cfg.tx_frames_per_cycle = link.port_frames_per_cycle;
        let word_bits = cfg.word_bits;
        let ports = (0..n_hosts)
            .map(|_| HostPort {
                to_dev: Link::new(link),
                to_host: Link::new(link),
                tx: VecDeque::new(),
                edge: HostDeframer::new(word_bits),
                inject: VecDeque::new(),
                rx: DevDeframer::new(word_bits),
                responses: VecDeque::new(),
                pending_out: VecDeque::new(),
                host_ep: None,
                dev_ep: None,
            })
            .collect();
        Ok(MultiHostSystem {
            coproc: Coprocessor::new(cfg, units)?,
            ports,
            route: DevDeframer::new(word_bits),
            injecting: VecDeque::new(),
            rr: 0,
            cycle: 0,
            word_bits,
            host_bits,
        })
    }

    /// Assemble a system with the reliable transport on every host port,
    /// optionally with per-direction fault injection. Each port's two
    /// directions derive distinct PRNG seeds from the model's seed, so
    /// fault streams are independent across ports and directions. The
    /// device-side endpoints sit at the multi-port transceiver edge; the
    /// shared coprocessor keeps its bare frame port.
    ///
    /// # Errors
    /// Same conditions as [`MultiHostSystem::new`].
    pub fn new_reliable(
        cfg: CoprocConfig,
        units: Vec<Box<dyn FunctionalUnit>>,
        link: LinkModel,
        n_hosts: usize,
        transport: TransportConfig,
        faults: Option<FaultModel>,
    ) -> Result<MultiHostSystem, SimError> {
        let mut sys = MultiHostSystem::new(cfg, units, link, n_hosts)?;
        for (i, p) in sys.ports.iter_mut().enumerate() {
            if let Some(m) = faults {
                let stream = |k: u64| {
                    m.with_seed(m.seed ^ (2 * i as u64 + k).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                };
                p.to_dev.install_faults(stream(1));
                p.to_host.install_faults(stream(2));
            }
            p.host_ep = Some(Endpoint::new(transport));
            p.dev_ep = Some(Endpoint::new(transport));
        }
        Ok(sys)
    }

    /// Number of attached hosts.
    pub fn n_hosts(&self) -> usize {
        self.ports.len()
    }

    /// Tag bits reserved for the host index.
    pub fn host_bits(&self) -> u32 {
        self.host_bits
    }

    /// Elapsed FPGA cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The shared coprocessor.
    pub fn coproc(&self) -> &Coprocessor {
        &self.coproc
    }

    /// Brand a host-local tag with the host index (drivers use this for
    /// every tagged request).
    pub fn brand_tag(&self, host: usize, local: Tag) -> Tag {
        let shift = 16 - self.host_bits;
        assert!(
            local < (1 << shift),
            "local tag overflows the per-host space"
        );
        ((host as Tag) << shift) | local
    }

    /// Which host does a branded tag belong to?
    fn tag_host(&self, tag: Tag) -> usize {
        (tag >> (16 - self.host_bits)) as usize % self.ports.len()
    }

    /// Queue a message from `host`. Tagged messages must already carry a
    /// branded tag (see [`MultiHostSystem::brand_tag`]); this method
    /// checks the brand to catch routing bugs early.
    pub fn send(&mut self, host: usize, msg: &HostMsg) {
        let tag = match msg {
            HostMsg::ReadReg { tag, .. }
            | HostMsg::ReadFlags { tag, .. }
            | HostMsg::Sync { tag } => Some(*tag),
            _ => None,
        };
        if let Some(t) = tag {
            assert_eq!(
                self.tag_host(t),
                host,
                "tag {t:#x} is not branded for host {host}"
            );
        }
        self.ports[host].tx.extend(msg.frames(self.word_bits));
    }

    /// Select the coprocessor's scheduling mode (see [`ActivityMode`]).
    pub fn set_activity_mode(&mut self, mode: ActivityMode) {
        self.coproc.set_activity_mode(mode);
    }

    /// Scheduler statistics for the shared coprocessor.
    pub fn sim_stats(&self) -> SimStats {
        self.coproc.sim_stats()
    }

    /// Take the next response for `host`.
    pub fn recv(&mut self, host: usize) -> Option<DevMsg> {
        self.ports[host].responses.pop_front()
    }

    /// Advance one FPGA clock cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        // Host side: inject queued frames into each host's link. A
        // reliable port feeds its endpoint, which paces the wire.
        for p in &mut self.ports {
            if let Some(ep) = p.host_ep.as_mut() {
                ep.poll(now);
                while let Some(f) = p.tx.pop_front() {
                    ep.send(f);
                }
                while p.to_dev.can_send(now) {
                    let Some(f) = ep.pull_frame(now) else {
                        break;
                    };
                    p.to_dev.send(now, f);
                }
            } else {
                while !p.tx.is_empty() && p.to_dev.can_send(now) {
                    let f = p.tx.pop_front().expect("checked non-empty");
                    p.to_dev.send(now, f);
                }
            }
        }
        // Device edge: reassemble per-host messages (through the
        // device-side endpoint when the port is reliable).
        for p in &mut self.ports {
            if let Some(ep) = p.dev_ep.as_mut() {
                ep.poll(now);
                while let Some(f) = p.to_dev.recv(now) {
                    ep.on_frame(now, f);
                }
                while let Some(payload) = ep.deliver() {
                    if let Some(msg) = p.edge.push(payload).expect("host frames well-formed") {
                        p.inject.push_back(msg);
                    }
                }
            } else {
                while let Some(f) = p.to_dev.recv(now) {
                    if let Some(msg) = p.edge.push(f).expect("host frames well-formed") {
                        p.inject.push_back(msg);
                    }
                }
            }
        }
        // Message-granular round-robin injection into the coprocessor.
        if self.injecting.is_empty() {
            let n = self.ports.len();
            for i in 0..n {
                let idx = (self.rr + i) % n;
                if let Some(msg) = self.ports[idx].inject.pop_front() {
                    // `injecting` is empty here; extend reuses its buffer
                    // instead of allocating a fresh Vec per message.
                    self.injecting.extend(msg.frames(self.word_bits));
                    self.rr = (idx + 1) % n;
                    break;
                }
            }
        }
        while let Some(&f) = self.injecting.front() {
            if self.coproc.push_frame(f) {
                self.injecting.pop_front();
            } else {
                break;
            }
        }
        // Clock the FPGA.
        self.coproc.step();
        // Route outbound frames: responses are deframed at the device
        // edge and re-serialised onto the owning host's link (the
        // transmit-side demultiplexer).
        while let Some(f) = self.coproc.pop_frame() {
            // A shared deframer at the device edge rebuilds the message
            // so it can be routed whole.
            if let Some(msg) = self.route.push(f).expect("device frames well-formed") {
                let host = match &msg {
                    DevMsg::Data { tag, .. }
                    | DevMsg::Flags { tag, .. }
                    | DevMsg::SyncAck { tag } => self.tag_host(*tag),
                    DevMsg::Error { .. } => 0, // management CPU
                };
                for frame in msg.frames(self.word_bits) {
                    // Device-side per-host serialisation is modelled as
                    // instantaneous; the per-host link applies its own
                    // latency/bandwidth below.
                    self.ports[host].pending_out_push(frame);
                }
            }
        }
        for p in &mut self.ports {
            if let Some(ep) = p.dev_ep.as_mut() {
                while let Some(f) = p.pending_out.pop_front() {
                    ep.send(f);
                }
                while p.to_host.can_send(now) {
                    let Some(f) = ep.pull_frame(now) else {
                        break;
                    };
                    p.to_host.send(now, f);
                }
            } else {
                while p.pending_out_front().is_some() && p.to_host.can_send(now) {
                    let f = p.pending_out_pop().expect("checked front");
                    p.to_host.send(now, f);
                }
            }
            if let Some(ep) = p.host_ep.as_mut() {
                while let Some(f) = p.to_host.recv(now) {
                    ep.on_frame(now, f);
                }
                while let Some(payload) = ep.deliver() {
                    if let Some(msg) = p.rx.push(payload).expect("device frames well-formed") {
                        p.responses.push_back(msg);
                    }
                }
            } else {
                while let Some(f) = p.to_host.recv(now) {
                    if let Some(msg) = p.rx.push(f).expect("device frames well-formed") {
                        p.responses.push_back(msg);
                    }
                }
            }
        }
        self.cycle += 1;
    }

    /// Step until `host` has a response, with a cycle budget.
    ///
    /// # Errors
    /// [`SimError::Timeout`] when the budget runs out.
    pub fn recv_blocking(&mut self, host: usize, max_cycles: u64) -> Result<DevMsg, SimError> {
        let start = self.cycle;
        while self.ports[host].responses.is_empty() {
            let elapsed = self.cycle - start;
            if elapsed >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: max_cycles,
                    waiting_for: format!("response for host {host}"),
                });
            }
            if self.idle_skip(max_cycles - elapsed) == 0 {
                self.step();
            }
        }
        Ok(self.ports[host].responses.pop_front().expect("non-empty"))
    }

    /// Jump over cycles in which nothing can happen (see
    /// [`crate::System`] — same idea, with per-port event sources).
    /// Returns the number of cycles skipped (0 means: step normally).
    ///
    /// [`ActivityMode::Gated`] skips only when the shared coprocessor is
    /// completely idle; [`ActivityMode::Scheduled`] additionally skips
    /// *quiet* stretches (units burning known latencies, a provably
    /// stalled dispatch head) by asking the coprocessor's event wheel
    /// for its next internal wake.
    fn idle_skip(&mut self, budget: u64) -> u64 {
        // Pending injection work means the device edge does something
        // every cycle — never skip over it.
        if !self.injecting.is_empty() || self.ports.iter().any(|p| !p.inject.is_empty()) {
            return 0;
        }
        // The coprocessor's own earliest wake, per mode. `None` means
        // quiet indefinitely as far as the FPGA is concerned.
        let coproc_next: Option<u64> = match self.coproc.activity_mode() {
            ActivityMode::Exhaustive => return 0,
            ActivityMode::Gated => {
                if !self.coproc.is_idle() {
                    return 0;
                }
                self.coproc.transport_next_event()
            }
            ActivityMode::Scheduled => match self.coproc.quiet_verdict() {
                QuietVerdict::Busy => return 0,
                QuietVerdict::Until(t) => Some(t),
                QuietVerdict::Indefinite => None,
            },
        };
        // A reliable endpoint with frames to push or deliver means this
        // cycle does work: step normally.
        for p in &self.ports {
            for ep in [p.host_ep.as_ref(), p.dev_ep.as_ref()]
                .into_iter()
                .flatten()
            {
                if ep.has_tx_work() || ep.has_deliverable() {
                    return 0;
                }
            }
        }
        let now = self.cycle;
        let mut next: Option<u64> = coproc_next.map(|t| t.max(now));
        let mut consider = |t: u64| next = Some(next.map_or(t, |n| n.min(t)));
        for p in &self.ports {
            if !p.tx.is_empty() {
                consider(p.to_dev.next_send_cycle());
            }
            if let Some(t) = p.to_dev.next_event_cycle(now) {
                consider(t);
            }
            if !p.pending_out.is_empty() {
                consider(p.to_host.next_send_cycle());
            }
            if let Some(t) = p.to_host.next_event_cycle(now) {
                consider(t);
            }
            for ep in [p.host_ep.as_ref(), p.dev_ep.as_ref()]
                .into_iter()
                .flatten()
            {
                if let Some(t) = ep.next_event_cycle() {
                    consider(t.max(now));
                }
            }
        }
        let skip = match next {
            Some(t) if t <= now => 0,
            Some(t) => (t - now).min(budget),
            None => budget,
        };
        if skip > 0 {
            match self.coproc.activity_mode() {
                ActivityMode::Scheduled => self.coproc.skip_quiet(skip),
                _ => self.coproc.fast_forward(skip),
            }
            self.cycle += skip;
        }
        skip
    }

    /// True when no work remains anywhere. Reliable ports must also be
    /// quiescent (all traffic delivered and acknowledged) or dead.
    pub fn is_idle(&self) -> bool {
        self.injecting.is_empty()
            && self.coproc.is_idle()
            && self.ports.iter().all(|p| {
                p.tx.is_empty()
                    && p.inject.is_empty()
                    && p.to_dev.in_flight() == 0
                    && p.to_host.in_flight() == 0
                    && p.pending_out_front().is_none()
                    && [p.host_ep.as_ref(), p.dev_ep.as_ref()]
                        .into_iter()
                        .flatten()
                        .all(|ep| ep.is_quiescent() || ep.is_dead())
            })
    }

    /// Aggregate reliability statistics for one port: injected faults on
    /// both link directions plus transport counters from both endpoints.
    pub fn link_stats(&self, host: usize) -> LinkStats {
        let p = &self.ports[host];
        let mut s = LinkStats::default();
        s.add_faults(&p.to_dev.fault_stats());
        s.add_faults(&p.to_host.fault_stats());
        for ep in [p.host_ep.as_ref(), p.dev_ep.as_ref()]
            .into_iter()
            .flatten()
        {
            s.add_transport(ep.stats());
        }
        s
    }
}

impl HostPort {
    fn pending_out_push(&mut self, f: u32) {
        self.pending_out.push_back(f);
    }
    fn pending_out_front(&self) -> Option<&u32> {
        self.pending_out.front()
    }
    fn pending_out_pop(&mut self) -> Option<u32> {
        self.pending_out.pop_front()
    }
}
