//! Conventional-CPU baselines and the clock-rate cost model.
//!
//! Experiments compare the simulated coprocessor against software two
//! ways:
//!
//! * **cycle/visit counts** — simulated FPGA cycles versus the software
//!   reference's element visits, converted to time through [`CpuModel`]
//!   (the paper's framing: 50 MHz FPGA against a GHz-class CPU);
//! * **wall clock** — criterion benches time the real Rust baselines in
//!   this module directly.

use xi_sort::reference::{quicksort, SoftwareXiSort};

/// A simple CPU timing model: visits/instructions per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Display name.
    pub name: &'static str,
    /// Clock rate in GHz.
    pub ghz: f64,
    /// Average machine instructions per element visit (load, compare,
    /// branch, index update).
    pub instrs_per_visit: f64,
    /// Sustained instructions per cycle.
    pub ipc: f64,
}

impl CpuModel {
    /// A 2010-era desktop CPU, the class of host the paper pairs with its
    /// Cyclone board.
    pub fn desktop_2010() -> CpuModel {
        CpuModel {
            name: "desktop-2010",
            ghz: 2.5,
            instrs_per_visit: 6.0,
            ipc: 1.5,
        }
    }

    /// An embedded-class host.
    pub fn embedded() -> CpuModel {
        CpuModel {
            name: "embedded",
            ghz: 0.4,
            instrs_per_visit: 7.0,
            ipc: 0.9,
        }
    }

    /// Time, in microseconds, for `visits` element visits.
    pub fn visits_to_us(&self, visits: u64) -> f64 {
        visits as f64 * self.instrs_per_visit / (self.ipc * self.ghz * 1000.0)
    }
}

/// Result of one software χ-sort run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwXiResult {
    /// Refinement rounds used.
    pub rounds: u32,
    /// Element visits performed.
    pub visits: u64,
}

/// Run the software χ-sort to completion; returns counts and verifies the
/// output against `sort_unstable`.
pub fn software_xi_sort(values: &[u32]) -> SwXiResult {
    let mut s = SoftwareXiSort::new(values);
    let rounds = s.sort();
    let visits = s.visits;
    let sorted = s.into_sorted();
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    SwXiResult { rounds, visits }
}

/// Run the software χ-sort selection; returns `(value, counts)`.
pub fn software_xi_select(values: &[u32], k: u32) -> (u32, SwXiResult) {
    let mut s = SoftwareXiSort::new(values);
    let (v, rounds) = s.select_k(k);
    (
        v,
        SwXiResult {
            rounds,
            visits: s.visits,
        },
    )
}

/// Sort with the plain quicksort baseline; returns comparison count.
pub fn software_quicksort(values: &[u32]) -> u64 {
    let mut v = values.to_vec();
    quicksort(&mut v)
}

/// Software arithmetic baseline: the element-at-a-time loop a CPU runs
/// for a vector add-with-carry chain, instrumented with an operation
/// count. Used by the throughput experiments as the "long sequence of
/// ordinary instructions" the paper contrasts against one FU dispatch.
pub fn software_multiword_add(a: &[u32], b: &[u32]) -> (Vec<u32>, u64) {
    assert_eq!(a.len(), b.len());
    let mut carry = 0u64;
    let mut ops = 0u64;
    let out = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let s = x as u64 + y as u64 + carry;
            carry = s >> 32;
            ops += 3; // add, add-carry, extract
            s as u32
        })
        .collect();
    (out, ops)
}

/// Deterministic pseudo-random workload generator shared by benches and
/// experiments (seeded, so paper-table rows are reproducible).
pub fn workload(seed: u64, n: usize, bound: u32) -> Vec<u32> {
    let mut fz = rtl_sim::StallFuzzer::new(seed, 0.0);
    (0..n)
        .map(|_| fz.below(bound.max(1) as u64) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_model_times_scale() {
        let cpu = CpuModel::desktop_2010();
        let t1 = cpu.visits_to_us(1000);
        let t2 = cpu.visits_to_us(2000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(cpu.visits_to_us(0) == 0.0);
        assert!(
            CpuModel::embedded().visits_to_us(1000) > t1,
            "slower CPU, more time"
        );
    }

    #[test]
    fn software_xi_runs_and_counts() {
        let values = workload(1, 200, 10_000);
        let r = software_xi_sort(&values);
        assert!(r.rounds >= 1);
        assert!(r.visits as usize > values.len(), "visits dominate n");
        let (v, sel) = software_xi_select(&values, 100);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(v, sorted[100]);
        assert!(sel.visits < r.visits);
    }

    #[test]
    fn multiword_add_matches_u128() {
        let a = [0xffff_ffffu32, 0xffff_ffff, 1];
        let b = [1u32, 0, 0];
        let (sum, ops) = software_multiword_add(&a, &b);
        assert_eq!(sum, vec![0, 0, 2]);
        assert_eq!(ops, 9);
    }

    #[test]
    fn workload_is_deterministic_and_bounded() {
        let w1 = workload(7, 100, 50);
        let w2 = workload(7, 100, 50);
        assert_eq!(w1, w2);
        assert!(w1.iter().all(|&v| v < 50));
        let w3 = workload(8, 100, 50);
        assert_ne!(w1, w3);
    }
}
