//! Interconnect models.
//!
//! A link carries 32-bit frames with a per-frame delivery latency and a
//! minimum spacing between frames (the inverse bandwidth). Both are in
//! FPGA clock cycles, so a link is characterised relative to the
//! coprocessor clock — exactly how the paper discusses the trade-off
//! ("the speed of the system is determined by two factors: the latency of
//! the communication interface to the host computer, and the clock speed
//! of the FPGA").

use std::collections::VecDeque;

/// splitmix64 — the fault model's hash/PRNG. Statistically strong enough
/// for fault sampling, trivially seedable, and stateless per frame index,
/// which is what makes fault patterns reproducible and independent of
/// simulation scheduling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, deterministic per-frame fault model for a [`Link`].
///
/// Every fault decision is a pure function of `(seed, frame index)` — the
/// index counts `send` calls on the link — so a fault pattern replays
/// bit-identically for a given seed regardless of how the simulation is
/// scheduled. Faults are applied at *injection* time: a dropped frame never
/// enters the in-flight queue, so delivery timestamps (and therefore
/// [`Link::next_event_cycle`] fast-forwarding) stay deterministic.
///
/// Rates are in permille (1/1000) of frames, drawn without replacement in
/// the order drop → corrupt → duplicate → burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultModel {
    /// PRNG seed; two links should use different seeds.
    pub seed: u64,
    /// Probability (‰) a frame is silently dropped.
    pub drop_permille: u32,
    /// Probability (‰) a single bit of the frame is flipped.
    pub corrupt_permille: u32,
    /// Probability (‰) a frame is delivered twice.
    pub duplicate_permille: u32,
    /// Probability (‰) a frame starts a burst loss: this frame and the
    /// next `burst_len - 1` frames are dropped.
    pub burst_permille: u32,
    /// Length of a burst loss in frames (≥ 1 when `burst_permille > 0`).
    pub burst_len: u32,
}

enum Fault {
    None,
    Drop,
    Corrupt(u32),
    Duplicate,
    Burst,
}

impl FaultModel {
    /// A model that injects no faults (useful as a baseline that still
    /// exercises the fault-model plumbing).
    pub fn none(seed: u64) -> FaultModel {
        FaultModel {
            seed,
            drop_permille: 0,
            corrupt_permille: 0,
            duplicate_permille: 0,
            burst_permille: 0,
            burst_len: 1,
        }
    }

    /// Drop, corrupt and duplicate each at `permille`‰, plus bursts of 4 at
    /// one tenth of that rate — a convenient single-knob severity dial.
    pub fn uniform(seed: u64, permille: u32) -> FaultModel {
        assert!(
            permille * 3 + permille / 10 <= 1000,
            "uniform fault rate too high: {permille}‰ per class"
        );
        FaultModel {
            seed,
            drop_permille: permille,
            corrupt_permille: permille,
            duplicate_permille: permille,
            burst_permille: permille / 10,
            burst_len: 4,
        }
    }

    /// The same model keyed by a different seed (e.g. for the reverse
    /// direction of a link pair).
    pub fn with_seed(self, seed: u64) -> FaultModel {
        FaultModel { seed, ..self }
    }

    fn decide(&self, index: u64) -> Fault {
        let r = splitmix64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let roll = (r % 1000) as u32;
        let mut threshold = self.drop_permille;
        if roll < threshold {
            return Fault::Drop;
        }
        threshold += self.corrupt_permille;
        if roll < threshold {
            return Fault::Corrupt((r >> 32) as u32 % 32);
        }
        threshold += self.duplicate_permille;
        if roll < threshold {
            return Fault::Duplicate;
        }
        threshold += self.burst_permille;
        if roll < threshold {
            return Fault::Burst;
        }
        Fault::None
    }
}

/// Per-link fault counters, surfaced alongside `SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames dropped (individually or as part of a burst).
    pub dropped: u64,
    /// Frames delivered with a flipped bit.
    pub corrupted: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
}

/// Aggregate reliability statistics for one host↔device connection:
/// injected faults summed over both link directions plus transport-layer
/// counters summed over both endpoints. Surfaced alongside `SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames the fault model dropped (either direction).
    pub frames_dropped: u64,
    /// Frames delivered with a flipped bit.
    pub frames_corrupted: u64,
    /// Frames delivered twice.
    pub frames_duplicated: u64,
    /// Data segments transmitted (first transmissions + retransmits).
    pub segments_sent: u64,
    /// Go-back-N retransmissions.
    pub retransmits: u64,
    /// Ack segments transmitted.
    pub acks_sent: u64,
    /// Ack segments accepted.
    pub acks_received: u64,
    /// Payload frames delivered in order to an application.
    pub delivered: u64,
    /// Segments rejected (bad CRC, duplicate, out of order).
    pub rejected: u64,
    /// An endpoint exhausted its retries and stopped retransmitting.
    pub gave_up: bool,
}

impl LinkStats {
    /// Fold one link direction's fault counters in.
    pub fn add_faults(&mut self, f: &FaultStats) {
        self.frames_dropped += f.dropped;
        self.frames_corrupted += f.corrupted;
        self.frames_duplicated += f.duplicated;
    }

    /// Fold one endpoint's transport counters in.
    pub fn add_transport(&mut self, t: &fu_isa::transport::TransportStats) {
        self.segments_sent += t.segments_sent;
        self.retransmits += t.retransmits;
        self.acks_sent += t.acks_sent;
        self.acks_received += t.acks_received;
        self.delivered += t.delivered;
        self.rejected += t.rejected;
        self.gave_up |= t.gave_up;
    }
}

// Shard-level rollups: a farm sums the per-connection statistics of all
// its shards. `gave_up` is sticky — one dead shard marks the rollup.
impl std::ops::AddAssign for LinkStats {
    fn add_assign(&mut self, rhs: LinkStats) {
        self.frames_dropped += rhs.frames_dropped;
        self.frames_corrupted += rhs.frames_corrupted;
        self.frames_duplicated += rhs.frames_duplicated;
        self.segments_sent += rhs.segments_sent;
        self.retransmits += rhs.retransmits;
        self.acks_sent += rhs.acks_sent;
        self.acks_received += rhs.acks_received;
        self.delivered += rhs.delivered;
        self.rejected += rhs.rejected;
        self.gave_up |= rhs.gave_up;
    }
}

impl std::ops::Add for LinkStats {
    type Output = LinkStats;

    fn add(mut self, rhs: LinkStats) -> LinkStats {
        self += rhs;
        self
    }
}

impl std::iter::Sum for LinkStats {
    fn sum<I: Iterator<Item = LinkStats>>(iter: I) -> LinkStats {
        iter.fold(LinkStats::default(), |acc, s| acc + s)
    }
}

/// Link timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Cycles between a frame entering the link and becoming deliverable.
    pub latency_cycles: u64,
    /// Minimum cycles between successive frame injections (≥ 1).
    pub cycles_per_frame: u64,
    /// Frames the coprocessor port moves per cycle (wired to the
    /// `rx/tx_frames_per_cycle` configuration).
    pub port_frames_per_cycle: u8,
}

impl LinkModel {
    /// The paper's prototyping-board link: high latency, low bandwidth
    /// ("only a very slow connection … was available").
    pub fn prototyping() -> LinkModel {
        LinkModel {
            name: "prototyping",
            latency_cycles: 500,
            cycles_per_frame: 50,
            port_frames_per_cycle: 1,
        }
    }

    /// A PCIe-class peripheral link: moderate latency, good bandwidth.
    pub fn pcie_like() -> LinkModel {
        LinkModel {
            name: "pcie-like",
            latency_cycles: 64,
            cycles_per_frame: 2,
            port_frames_per_cycle: 2,
        }
    }

    /// A tightly-coupled FPGA/CPU fabric ("there are FPGAs that are
    /// tightly integrated with processors, offering extremely high
    /// transfer rates").
    pub fn tightly_coupled() -> LinkModel {
        LinkModel {
            name: "tightly-coupled",
            latency_cycles: 2,
            cycles_per_frame: 1,
            port_frames_per_cycle: 4,
        }
    }

    /// An ideal link (zero latency, one frame per cycle) for isolating
    /// on-FPGA behaviour in experiments.
    pub fn ideal() -> LinkModel {
        LinkModel {
            name: "ideal",
            latency_cycles: 0,
            cycles_per_frame: 1,
            port_frames_per_cycle: 8,
        }
    }

    /// All presets, slowest first.
    pub fn presets() -> [LinkModel; 4] {
        [
            LinkModel::prototyping(),
            LinkModel::pcie_like(),
            LinkModel::tightly_coupled(),
            LinkModel::ideal(),
        ]
    }
}

/// One direction of a link: frames in flight with delivery timestamps.
#[derive(Debug, Clone)]
pub struct Link {
    model: LinkModel,
    in_flight: VecDeque<(u64, u32)>,
    next_injection: u64,
    frames_carried: u64,
    faults: Option<FaultModel>,
    fault_index: u64,
    burst_remaining: u32,
    fault_stats: FaultStats,
}

impl Link {
    /// An empty link with the given timing.
    pub fn new(model: LinkModel) -> Link {
        assert!(model.cycles_per_frame >= 1, "bandwidth must be finite");
        Link {
            model,
            in_flight: VecDeque::new(),
            next_injection: 0,
            frames_carried: 0,
            faults: None,
            fault_index: 0,
            burst_remaining: 0,
            fault_stats: FaultStats::default(),
        }
    }

    /// A link with a seeded fault model installed.
    pub fn with_faults(model: LinkModel, faults: FaultModel) -> Link {
        let mut l = Link::new(model);
        l.install_faults(faults);
        l
    }

    /// Install (or replace) the fault model. Fault decisions restart from
    /// the current frame index, not from zero.
    pub fn install_faults(&mut self, faults: FaultModel) {
        if faults.burst_permille > 0 {
            assert!(faults.burst_len >= 1, "burst length must be at least 1");
        }
        self.faults = Some(faults);
    }

    /// Fault counters (all zero when no fault model is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// The timing model.
    pub fn model(&self) -> &LinkModel {
        &self.model
    }

    /// Can a frame be injected at cycle `now`? (Bandwidth gate.)
    pub fn can_send(&self, now: u64) -> bool {
        now >= self.next_injection
    }

    /// Inject a frame at cycle `now`.
    ///
    /// # Panics
    /// Panics when the bandwidth gate is closed — callers check
    /// [`Link::can_send`] first.
    pub fn send(&mut self, now: u64, frame: u32) {
        assert!(self.can_send(now), "link send before bandwidth window");
        self.next_injection = now + self.model.cycles_per_frame;
        self.frames_carried += 1;
        let mut frame = frame;
        if let Some(fm) = self.faults {
            let idx = self.fault_index;
            self.fault_index += 1;
            if self.burst_remaining > 0 {
                self.burst_remaining -= 1;
                self.fault_stats.dropped += 1;
                return;
            }
            match fm.decide(idx) {
                Fault::None => {}
                Fault::Drop => {
                    self.fault_stats.dropped += 1;
                    return;
                }
                Fault::Burst => {
                    self.burst_remaining = fm.burst_len.saturating_sub(1);
                    self.fault_stats.dropped += 1;
                    return;
                }
                Fault::Corrupt(bit) => {
                    frame ^= 1 << bit;
                    self.fault_stats.corrupted += 1;
                }
                Fault::Duplicate => {
                    self.fault_stats.duplicated += 1;
                    self.in_flight
                        .push_back((now + self.model.latency_cycles, frame));
                }
            }
        }
        self.in_flight
            .push_back((now + self.model.latency_cycles, frame));
    }

    /// Take the next frame whose delivery time has arrived.
    pub fn recv(&mut self, now: u64) -> Option<u32> {
        if self.in_flight.front().is_some_and(|(t, _)| *t <= now) {
            self.in_flight.pop_front().map(|(_, f)| f)
        } else {
            None
        }
    }

    /// Put a frame back at the head (the receiver's FIFO was full; real
    /// links assert flow control).
    pub fn unrecv(&mut self, now: u64, frame: u32) {
        self.in_flight.push_front((now, frame));
    }

    /// Frames still travelling.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Cycle at which the head in-flight frame becomes deliverable, if
    /// any frame is travelling, clamped to be no earlier than `now` (a
    /// frame re-queued by [`Link::unrecv`] carries its re-queue time, which
    /// may already have passed). Delivery times are deterministic, so an
    /// idle-system scheduler can jump straight to this cycle.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        self.in_flight.front().map(|(t, _)| (*t).max(now))
    }

    /// Earliest cycle at which the bandwidth gate reopens. Only a future
    /// event if the sender actually has a frame queued.
    pub fn next_send_cycle(&self) -> u64 {
        self.next_injection
    }

    /// Total frames ever injected.
    pub fn frames_carried(&self) -> u64 {
        self.frames_carried
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_delays_delivery() {
        let mut l = Link::new(LinkModel {
            name: "t",
            latency_cycles: 10,
            cycles_per_frame: 1,
            port_frames_per_cycle: 1,
        });
        l.send(0, 42);
        assert_eq!(l.recv(9), None);
        assert_eq!(l.recv(10), Some(42));
        assert_eq!(l.recv(11), None, "delivered exactly once");
    }

    #[test]
    fn bandwidth_spaces_injections() {
        let mut l = Link::new(LinkModel {
            name: "t",
            latency_cycles: 0,
            cycles_per_frame: 4,
            port_frames_per_cycle: 1,
        });
        assert!(l.can_send(0));
        l.send(0, 1);
        assert!(!l.can_send(1));
        assert!(!l.can_send(3));
        assert!(l.can_send(4));
        l.send(4, 2);
        assert_eq!(l.frames_carried(), 2);
    }

    #[test]
    fn frames_keep_order() {
        let mut l = Link::new(LinkModel::ideal());
        l.send(0, 1);
        l.send(1, 2);
        l.send(2, 3);
        assert_eq!(l.recv(5), Some(1));
        assert_eq!(l.recv(5), Some(2));
        assert_eq!(l.recv(5), Some(3));
    }

    #[test]
    fn unrecv_redelivers_first() {
        let mut l = Link::new(LinkModel::ideal());
        l.send(0, 7);
        l.send(1, 8);
        let f = l.recv(3).unwrap();
        l.unrecv(3, f);
        assert_eq!(l.recv(3), Some(7), "pushed-back frame comes first");
        assert_eq!(l.recv(3), Some(8));
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let p = LinkModel::presets();
        for w in p.windows(2) {
            assert!(
                w[0].latency_cycles >= w[1].latency_cycles,
                "{} should be slower than {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    #[should_panic(expected = "before bandwidth window")]
    fn early_send_panics() {
        let mut l = Link::new(LinkModel::prototyping());
        l.send(0, 1);
        l.send(1, 2);
    }

    #[test]
    fn next_event_cycle_clamps_after_unrecv() {
        let mut l = Link::new(LinkModel::ideal());
        l.send(0, 7);
        let f = l.recv(5).unwrap();
        l.unrecv(5, f);
        // The re-queued frame carries t = 5; at now = 9 the link must not
        // report an event in the past.
        assert_eq!(l.next_event_cycle(9), Some(9));
        assert_eq!(l.next_event_cycle(5), Some(5));
        // A genuinely future delivery is reported untouched.
        let mut l2 = Link::new(LinkModel::pcie_like());
        l2.send(0, 1);
        assert_eq!(l2.next_event_cycle(3), Some(64));
    }

    fn run_faulty(seed: u64, n: u64) -> (Vec<u32>, FaultStats) {
        let mut l = Link::with_faults(
            LinkModel::ideal(),
            FaultModel {
                seed,
                drop_permille: 100,
                corrupt_permille: 100,
                duplicate_permille: 100,
                burst_permille: 20,
                burst_len: 3,
            },
        );
        for (i, now) in (0..n).enumerate() {
            l.send(now, i as u32);
        }
        let mut got = Vec::new();
        while let Some(f) = l.recv(n) {
            got.push(f);
        }
        (got, l.fault_stats())
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let (a1, s1) = run_faulty(0xFEED, 2_000);
        let (a2, s2) = run_faulty(0xFEED, 2_000);
        assert_eq!(a1, a2, "same seed must replay the same fault pattern");
        assert_eq!(s1, s2);
        let (b, _) = run_faulty(0xBEEF, 2_000);
        assert_ne!(a1, b, "different seeds should differ");
    }

    #[test]
    fn fault_rates_land_in_the_right_ballpark() {
        let (got, stats) = run_faulty(42, 10_000);
        // ~10% drop + ~2%·3 burst ≈ 1400–1800 dropped, ~10% each of the
        // others; keep the bounds loose — this guards plumbing, not the
        // PRNG's quality.
        assert!(
            stats.dropped > 800 && stats.dropped < 2500,
            "dropped = {}",
            stats.dropped
        );
        assert!(
            stats.corrupted > 500 && stats.corrupted < 1800,
            "corrupted = {}",
            stats.corrupted
        );
        assert!(
            stats.duplicated > 500 && stats.duplicated < 1800,
            "duplicated = {}",
            stats.duplicated
        );
        assert_eq!(
            got.len() as u64,
            10_000 - stats.dropped + stats.duplicated,
            "conservation: delivered = sent - dropped + duplicated"
        );
    }

    #[test]
    fn fault_free_model_is_transparent() {
        let mut l = Link::with_faults(LinkModel::ideal(), FaultModel::none(1));
        for i in 0..100u32 {
            l.send(i as u64, i);
        }
        let mut got = Vec::new();
        while let Some(f) = l.recv(200) {
            got.push(f);
        }
        assert_eq!(got, (0..100u32).collect::<Vec<_>>());
        assert_eq!(l.fault_stats(), FaultStats::default());
    }
}
