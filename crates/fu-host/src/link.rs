//! Interconnect models.
//!
//! A link carries 32-bit frames with a per-frame delivery latency and a
//! minimum spacing between frames (the inverse bandwidth). Both are in
//! FPGA clock cycles, so a link is characterised relative to the
//! coprocessor clock — exactly how the paper discusses the trade-off
//! ("the speed of the system is determined by two factors: the latency of
//! the communication interface to the host computer, and the clock speed
//! of the FPGA").

use std::collections::VecDeque;

/// Link timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Cycles between a frame entering the link and becoming deliverable.
    pub latency_cycles: u64,
    /// Minimum cycles between successive frame injections (≥ 1).
    pub cycles_per_frame: u64,
    /// Frames the coprocessor port moves per cycle (wired to the
    /// `rx/tx_frames_per_cycle` configuration).
    pub port_frames_per_cycle: u8,
}

impl LinkModel {
    /// The paper's prototyping-board link: high latency, low bandwidth
    /// ("only a very slow connection … was available").
    pub fn prototyping() -> LinkModel {
        LinkModel {
            name: "prototyping",
            latency_cycles: 500,
            cycles_per_frame: 50,
            port_frames_per_cycle: 1,
        }
    }

    /// A PCIe-class peripheral link: moderate latency, good bandwidth.
    pub fn pcie_like() -> LinkModel {
        LinkModel {
            name: "pcie-like",
            latency_cycles: 64,
            cycles_per_frame: 2,
            port_frames_per_cycle: 2,
        }
    }

    /// A tightly-coupled FPGA/CPU fabric ("there are FPGAs that are
    /// tightly integrated with processors, offering extremely high
    /// transfer rates").
    pub fn tightly_coupled() -> LinkModel {
        LinkModel {
            name: "tightly-coupled",
            latency_cycles: 2,
            cycles_per_frame: 1,
            port_frames_per_cycle: 4,
        }
    }

    /// An ideal link (zero latency, one frame per cycle) for isolating
    /// on-FPGA behaviour in experiments.
    pub fn ideal() -> LinkModel {
        LinkModel {
            name: "ideal",
            latency_cycles: 0,
            cycles_per_frame: 1,
            port_frames_per_cycle: 8,
        }
    }

    /// All presets, slowest first.
    pub fn presets() -> [LinkModel; 4] {
        [
            LinkModel::prototyping(),
            LinkModel::pcie_like(),
            LinkModel::tightly_coupled(),
            LinkModel::ideal(),
        ]
    }
}

/// One direction of a link: frames in flight with delivery timestamps.
#[derive(Debug, Clone)]
pub struct Link {
    model: LinkModel,
    in_flight: VecDeque<(u64, u32)>,
    next_injection: u64,
    frames_carried: u64,
}

impl Link {
    /// An empty link with the given timing.
    pub fn new(model: LinkModel) -> Link {
        assert!(model.cycles_per_frame >= 1, "bandwidth must be finite");
        Link {
            model,
            in_flight: VecDeque::new(),
            next_injection: 0,
            frames_carried: 0,
        }
    }

    /// The timing model.
    pub fn model(&self) -> &LinkModel {
        &self.model
    }

    /// Can a frame be injected at cycle `now`? (Bandwidth gate.)
    pub fn can_send(&self, now: u64) -> bool {
        now >= self.next_injection
    }

    /// Inject a frame at cycle `now`.
    ///
    /// # Panics
    /// Panics when the bandwidth gate is closed — callers check
    /// [`Link::can_send`] first.
    pub fn send(&mut self, now: u64, frame: u32) {
        assert!(self.can_send(now), "link send before bandwidth window");
        self.next_injection = now + self.model.cycles_per_frame;
        self.in_flight
            .push_back((now + self.model.latency_cycles, frame));
        self.frames_carried += 1;
    }

    /// Take the next frame whose delivery time has arrived.
    pub fn recv(&mut self, now: u64) -> Option<u32> {
        if self.in_flight.front().is_some_and(|(t, _)| *t <= now) {
            self.in_flight.pop_front().map(|(_, f)| f)
        } else {
            None
        }
    }

    /// Put a frame back at the head (the receiver's FIFO was full; real
    /// links assert flow control).
    pub fn unrecv(&mut self, now: u64, frame: u32) {
        self.in_flight.push_front((now, frame));
    }

    /// Frames still travelling.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Cycle at which the head in-flight frame becomes deliverable, if
    /// any frame is travelling. Delivery times are deterministic, so an
    /// idle-system scheduler can jump straight to this cycle. A frame
    /// re-queued by [`Link::unrecv`] carries its re-queue time, which may
    /// be in the past relative to `now` — callers clamp.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.in_flight.front().map(|(t, _)| *t)
    }

    /// Earliest cycle at which the bandwidth gate reopens. Only a future
    /// event if the sender actually has a frame queued.
    pub fn next_send_cycle(&self) -> u64 {
        self.next_injection
    }

    /// Total frames ever injected.
    pub fn frames_carried(&self) -> u64 {
        self.frames_carried
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_delays_delivery() {
        let mut l = Link::new(LinkModel {
            name: "t",
            latency_cycles: 10,
            cycles_per_frame: 1,
            port_frames_per_cycle: 1,
        });
        l.send(0, 42);
        assert_eq!(l.recv(9), None);
        assert_eq!(l.recv(10), Some(42));
        assert_eq!(l.recv(11), None, "delivered exactly once");
    }

    #[test]
    fn bandwidth_spaces_injections() {
        let mut l = Link::new(LinkModel {
            name: "t",
            latency_cycles: 0,
            cycles_per_frame: 4,
            port_frames_per_cycle: 1,
        });
        assert!(l.can_send(0));
        l.send(0, 1);
        assert!(!l.can_send(1));
        assert!(!l.can_send(3));
        assert!(l.can_send(4));
        l.send(4, 2);
        assert_eq!(l.frames_carried(), 2);
    }

    #[test]
    fn frames_keep_order() {
        let mut l = Link::new(LinkModel::ideal());
        l.send(0, 1);
        l.send(1, 2);
        l.send(2, 3);
        assert_eq!(l.recv(5), Some(1));
        assert_eq!(l.recv(5), Some(2));
        assert_eq!(l.recv(5), Some(3));
    }

    #[test]
    fn unrecv_redelivers_first() {
        let mut l = Link::new(LinkModel::ideal());
        l.send(0, 7);
        l.send(1, 8);
        let f = l.recv(3).unwrap();
        l.unrecv(3, f);
        assert_eq!(l.recv(3), Some(7), "pushed-back frame comes first");
        assert_eq!(l.recv(3), Some(8));
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let p = LinkModel::presets();
        for w in p.windows(2) {
            assert!(
                w[0].latency_cycles >= w[1].latency_cycles,
                "{} should be slower than {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    #[should_panic(expected = "before bandwidth window")]
    fn early_send_panics() {
        let mut l = Link::new(LinkModel::prototyping());
        l.send(0, 1);
        l.send(1, 2);
    }
}
