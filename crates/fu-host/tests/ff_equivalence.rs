//! The fast-forward/activity-gating correctness contract: a system run
//! in the default [`ActivityMode::Gated`] mode (stage gating, idle
//! fast-forward, batched stepping) must be **bit-identical** to the same
//! run in [`ActivityMode::Exhaustive`] mode — same simulated cycle
//! counts, same response stream, same frame accounting, same machine
//! statistics. The optimisation changes how fast wall-clock time passes,
//! never what the simulation computes.

use fu_host::{LinkModel, System};
use fu_isa::instr::{InstrWord, UserInstr};
use fu_isa::{DevMsg, HostMsg, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{ActivityMode, CoprocConfig, CoprocStats, FunctionalUnit};
use fu_units::ClockDomainFu;
use proptest::prelude::*;

/// One host-side action in a generated workload.
#[derive(Debug, Clone)]
enum Step {
    Write(u8, u32),
    Read(u8),
    /// `Add(dst, src1, src2)` on the fast unit (func 1).
    Add(u8, u8, u8),
    /// Same operation on the clock-domain-wrapped unit (func 2).
    SlowAdd(u8, u8, u8),
    Sync,
}

impl Step {
    fn expects_response(&self) -> bool {
        matches!(self, Step::Read(_) | Step::Sync)
    }
}

fn add_instr(func: u8, dst: u8, s1: u8, s2: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func,
        variety: 0,
        dst_flag: 0,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    }))
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..8, any::<u32>()).prop_map(|(r, v)| Step::Write(r, v)),
            (0u8..8).prop_map(Step::Read),
            (0u8..8, 0u8..8, 0u8..8).prop_map(|(d, a, b)| Step::Add(d, a, b)),
            (0u8..8, 0u8..8, 0u8..8).prop_map(|(d, a, b)| Step::SlowAdd(d, a, b)),
            Just(Step::Sync),
        ],
        1..12,
    )
}

#[derive(Debug, PartialEq)]
struct Outcome {
    cycle: u64,
    responses: Vec<DevMsg>,
    frames: (u64, u64),
    stats: CoprocStats,
    skipped: u64,
}

/// Drive the burst schedule through a fresh system in `mode`. Bursts are
/// sent back-to-back and their responses collected before the next burst
/// starts, so slow links leave long idle stretches for the scheduler to
/// fast-forward across.
fn run(
    mode: ActivityMode,
    bursts: &[Vec<Step>],
    link: LinkModel,
    latency: u32,
    divider: u32,
) -> Outcome {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(LatencyFu::new("add", 1, latency)),
        Box::new(ClockDomainFu::new(
            LatencyFu::new("slowadd", 2, latency),
            divider,
        )),
    ];
    let mut sys = System::new(CoprocConfig::default(), units, link).unwrap();
    sys.set_activity_mode(mode);
    let wb = sys.word_bits();
    let mut responses = Vec::new();
    let mut tag = 0u16;
    for burst in bursts {
        let expected = burst.iter().filter(|s| s.expects_response()).count();
        for step in burst {
            match *step {
                Step::Write(r, v) => sys.send(&HostMsg::WriteReg {
                    reg: r,
                    value: Word::from_u64(v as u64, wb),
                }),
                Step::Read(r) => {
                    sys.send(&HostMsg::ReadReg { reg: r, tag });
                    tag = tag.wrapping_add(1);
                }
                Step::Add(d, a, b) => sys.send(&add_instr(1, d, a, b)),
                Step::SlowAdd(d, a, b) => sys.send(&add_instr(2, d, a, b)),
                Step::Sync => {
                    sys.send(&HostMsg::Sync { tag });
                    tag = tag.wrapping_add(1);
                }
            }
        }
        for _ in 0..expected {
            responses.push(sys.recv_blocking(3_000_000).expect("response overdue"));
        }
    }
    sys.run_until(3_000_000, |s| s.is_idle()).expect("drain");
    let stats = sys.coproc().stats();
    let skipped = sys.sim_stats().cycles_skipped;
    Outcome {
        cycle: sys.cycle(),
        responses,
        frames: sys.frames_carried(),
        stats,
        skipped,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn gated_equals_exhaustive(
        bursts in proptest::collection::vec(steps(), 1..5),
        link_sel in 0usize..4,
        latency in 1u32..24,
        divider in 1u32..6,
    ) {
        let link = LinkModel::presets()[link_sel];
        let gated = run(ActivityMode::Gated, &bursts, link, latency, divider);
        let exhaustive = run(ActivityMode::Exhaustive, &bursts, link, latency, divider);
        prop_assert_eq!(gated.cycle, exhaustive.cycle, "simulated time diverged");
        prop_assert_eq!(&gated.responses, &exhaustive.responses, "response stream diverged");
        prop_assert_eq!(gated.frames, exhaustive.frames, "frame accounting diverged");
        prop_assert_eq!(gated.stats, exhaustive.stats, "machine statistics diverged");
        prop_assert_eq!(exhaustive.skipped, 0, "exhaustive mode must not fast-forward");
    }
}

/// The slow prototyping link must actually trigger fast-forwarding —
/// otherwise the equivalence above is vacuous.
#[test]
fn prototyping_link_fast_forwards() {
    let bursts = vec![vec![
        Step::Write(0, 7),
        Step::Write(1, 9),
        Step::Add(2, 0, 1),
        Step::Read(2),
        Step::Sync,
    ]];
    let out = run(ActivityMode::Gated, &bursts, LinkModel::prototyping(), 4, 2);
    assert_eq!(
        out.responses,
        vec![
            DevMsg::Data {
                tag: 0,
                value: Word::from_u64(16, 32)
            },
            DevMsg::SyncAck { tag: 1 }
        ]
    );
    assert!(
        out.skipped > out.cycle / 2,
        "most of a slow-link run should be skipped: {} of {}",
        out.skipped,
        out.cycle
    );
}
