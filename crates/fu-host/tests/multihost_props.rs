//! Property tests for the multi-host arbiter: with disjoint register
//! ranges, every host's responses must match its private shadow model
//! regardless of how the round-robin arbiter interleaves the streams,
//! the link timing, or the host count.

use fu_host::{LinkModel, MultiHostSystem};
use fu_isa::{DevMsg, HostMsg, Word};
use fu_rtm::CoprocConfig;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Write(u8, u32), // register offset within the host's range, value
    Read(u8),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..4, any::<u32>()).prop_map(|(r, v)| Step::Write(r, v)),
            (0u8..4).prop_map(Step::Read),
        ],
        1..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn per_host_streams_stay_consistent(
        programs in proptest::collection::vec(steps(), 1..4),
        link_sel in 0usize..3,
    ) {
        let n_hosts = programs.len();
        let link = [
            LinkModel::ideal(),
            LinkModel::tightly_coupled(),
            LinkModel::pcie_like(),
        ][link_sel];
        let mut sys = MultiHostSystem::new(
            CoprocConfig::default(),
            vec![],
            link,
            n_hosts,
        )
        .unwrap();

        // Each host owns registers [4*host .. 4*host+4).
        let mut shadows = vec![[0u32; 4]; n_hosts];
        let mut expected: Vec<Vec<DevMsg>> = vec![Vec::new(); n_hosts];
        let mut tags = vec![0u16; n_hosts];
        for (host, program) in programs.iter().enumerate() {
            for step in program {
                match *step {
                    Step::Write(r, v) => {
                        shadows[host][r as usize] = v;
                        sys.send(host, &HostMsg::WriteReg {
                            reg: 4 * host as u8 + r,
                            value: Word::from_u64(v as u64, 32),
                        });
                    }
                    Step::Read(r) => {
                        let tag = sys.brand_tag(host, tags[host]);
                        tags[host] += 1;
                        sys.send(host, &HostMsg::ReadReg {
                            reg: 4 * host as u8 + r,
                            tag,
                        });
                        expected[host].push(DevMsg::Data {
                            tag,
                            value: Word::from_u64(shadows[host][r as usize] as u64, 32),
                        });
                    }
                }
            }
        }

        let mut got: Vec<Vec<DevMsg>> = vec![Vec::new(); n_hosts];
        let mut budget = 3_000_000u64;
        while got
            .iter()
            .zip(&expected)
            .any(|(g, e)| g.len() < e.len())
        {
            sys.step();
            for (host, bucket) in got.iter_mut().enumerate() {
                while let Some(m) = sys.recv(host) {
                    bucket.push(m);
                }
            }
            budget -= 1;
            prop_assert!(budget > 0, "multihost run wedged");
        }
        for host in 0..n_hosts {
            prop_assert_eq!(&got[host], &expected[host], "host {} diverged", host);
        }
        // Drain fully.
        let mut budget = 1_000_000u64;
        while !sys.is_idle() {
            sys.step();
            budget -= 1;
            prop_assert!(budget > 0, "failed to drain");
        }
    }
}
