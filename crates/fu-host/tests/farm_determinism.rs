//! The farm's headline contract: for ANY job set, the merged result
//! stream of [`Farm::run_parallel`] is **bit-identical** to
//! [`Farm::run_serial`] — same outputs, same tags, same errors, same
//! per-shard cycle counts — under both activity modes. Thread scheduling
//! may change wall-clock interleaving; it must never leak into results.

use fu_host::{Farm, FarmConfig, Job, JobResult, LinkModel};
use fu_isa::HostMsg;
use fu_rtm::{ActivityMode, CoprocConfig};
use proptest::prelude::*;

/// Strategy for one job. Programs use a closed pool of two-operand ops
/// over r0..r7 so any generated program assembles; request batches mix
/// valid and *invalid* reads so error responses are covered too.
fn job() -> impl Strategy<Value = Job> {
    let op = prop_oneof![
        Just("ADD"),
        Just("SUB"),
        Just("XOR"),
        Just("AND"),
        Just("OR"),
    ];
    let instr = (op, 0u8..8, 0u8..8, 0u8..8, 0u8..4)
        .prop_map(|(op, d, a, b, f)| format!("{op} r{d}, r{a}, r{b}, f{f}"));
    let program = (
        proptest::collection::vec(instr, 1..12),
        proptest::collection::vec(0u8..8, 1..4),
    )
        .prop_map(|(lines, reads)| Job::Program {
            source: lines.join("\n"),
            reads,
        });
    let request = prop_oneof![
        (0u8..8, any::<u32>()).prop_map(|(r, v)| HostMsg::WriteReg {
            reg: r,
            value: fu_isa::Word::from_u64(v as u64, 32),
        }),
        (0u8..8, any::<u16>()).prop_map(|(r, tag)| HostMsg::ReadReg { reg: r, tag }),
        // An out-of-range register: the device answers with an in-band
        // error, which must also merge identically.
        (200u8..=255, any::<u16>()).prop_map(|(r, tag)| HostMsg::ReadReg { reg: r, tag }),
        any::<u16>().prop_map(|tag| HostMsg::Sync { tag }),
    ];
    let requests = proptest::collection::vec(request, 1..6).prop_map(Job::Requests);
    prop_oneof![program, requests]
}

fn run_both(
    jobs: &[Job],
    shards: usize,
    seed: u64,
    mode: ActivityMode,
) -> (Vec<JobResult>, Vec<JobResult>) {
    let cfg = FarmConfig {
        shards,
        queue_depth: 2, // tiny queue: exercise backpressure on every run
        seed,
        activity_mode: mode,
        ..FarmConfig::default()
    };
    let mut farm = Farm::standard(cfg, CoprocConfig::default(), LinkModel::pcie_like());
    let serial = farm.run_serial(jobs).expect("serial run");
    let serial_cycles: Vec<u64> = farm.shard_reports().iter().map(|r| r.cycles).collect();
    let parallel = farm.run_parallel(jobs).expect("parallel run");
    let parallel_cycles: Vec<u64> = farm.shard_reports().iter().map(|r| r.cycles).collect();
    assert_eq!(
        serial_cycles, parallel_cycles,
        "per-shard simulated time must not depend on threading"
    );
    (serial, parallel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_stream_is_bit_identical_to_serial(
        jobs in proptest::collection::vec(job(), 1..20),
        shards in 1usize..6,
        seed: u64,
    ) {
        for mode in [ActivityMode::Gated, ActivityMode::Exhaustive] {
            let (serial, parallel) = run_both(&jobs, shards, seed, mode);
            prop_assert_eq!(&serial, &parallel, "mode {:?} diverged", mode);
        }
    }

    #[test]
    fn gated_and_exhaustive_farms_agree(
        jobs in proptest::collection::vec(job(), 1..10),
        shards in 1usize..4,
    ) {
        // The farm must also preserve the PR-1 contract shard-wise: the
        // activity mode changes host wall-clock, never results.
        let (gated, _) = run_both(&jobs, shards, 7, ActivityMode::Gated);
        let (exhaustive, _) = run_both(&jobs, shards, 7, ActivityMode::Exhaustive);
        prop_assert_eq!(gated, exhaustive);
    }
}
