//! Selection with χ-sort: find order statistics without sorting.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example selection_median
//! ```
//!
//! χ-sort "performs selection and sorting using an array represented with
//! index intervals". Selection only refines groups whose interval still
//! contains the wanted rank, so most of the array is never touched — the
//! work saving this example demonstrates against a full sort.

use fu_host::baseline::workload;
use fu_host::{Driver, LinkModel, System};
use fu_rtm::CoprocConfig;
use xi_sort::{XiConfig, XiOp, XiSortAdapter};

fn xi_driver(n_cells: u32) -> Driver {
    let system = System::new(
        CoprocConfig::default(),
        vec![Box::new(XiSortAdapter::new(XiConfig::new(n_cells), 32))],
        LinkModel::tightly_coupled(),
    )
    .expect("valid configuration");
    Driver::new(system, 500_000_000)
}

fn main() {
    let n = 101;
    let values = workload(2024, n, 10_000);
    let mut sorted = values.clone();
    sorted.sort_unstable();

    // Median, quartiles, extremes — each a single coprocessor call.
    println!("order statistics over {n} elements:");
    for (name, k) in [
        ("min     ", 0usize),
        ("p25     ", n / 4),
        ("median  ", n / 2),
        ("p75     ", 3 * n / 4),
        ("max     ", n - 1),
    ] {
        let mut dev = xi_driver(128);
        dev.xi_load(&values, 1).expect("load");
        let before = dev.cycles();
        let v = dev.xi_select(k as u32, 1, 2).expect("select");
        let cycles = dev.cycles() - before;
        // How much of the array did the selection leave unresolved?
        dev.write_reg(1, 0);
        dev.xi_op(XiOp::CountImprecise, 1, 2);
        let unresolved = dev.read_reg(2).expect("count").as_u64();
        assert_eq!(v, sorted[k], "{name}");
        println!(
            "  {name} = {v:>6}   ({cycles:>6} cycles, {unresolved:>3} intervals left imprecise)"
        );
    }

    // Versus a full sort on the same hardware.
    let mut dev = xi_driver(128);
    dev.xi_load(&values, 1).expect("load");
    let before = dev.cycles();
    dev.xi_sort(2).expect("sort");
    let sort_cycles = dev.cycles() - before;
    println!("\n  full sort            ({sort_cycles:>6} cycles, every interval precise)");
    println!(
        "\nSelection resolves only the groups on the path to rank k — the\n\
         remaining intervals stay imprecise and cost nothing."
    );
}
