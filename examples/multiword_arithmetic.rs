//! Multi-word arithmetic with the Table 3.1 carry chain.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example multiword_arithmetic
//! ```
//!
//! "Multi-word operation is supported through an externally provided
//! carry bit read from the input carry flag." This example computes
//! 128-bit sums and differences on a 32-bit coprocessor configuration
//! with ADD/ADC and SUB/SBB chains, then reruns the same host logic on a
//! 128-bit configuration where one instruction suffices — the word size
//! really is just a generic.

use fu_host::{Driver, LinkModel, System};
use fu_isa::Word;
use fu_rtm::CoprocConfig;
use fu_units::standard_units;

const A: u128 = 0xfedc_ba98_7654_3210_0f1e_2d3c_4b5a_6978;
const B: u128 = 0x0123_4567_89ab_cdef_f0e1_d2c3_b4a5_9687;

fn on_32bit() -> (u128, u128, u64) {
    let sys = System::new(
        CoprocConfig::default(),
        standard_units(32),
        LinkModel::tightly_coupled(),
    )
    .expect("valid configuration");
    let mut dev = Driver::new(sys, 10_000_000);

    // Limbs of A in r1..r4, limbs of B in r5..r8 (little-endian).
    for i in 0..4u8 {
        dev.write_reg(1 + i, ((A >> (32 * i)) & 0xffff_ffff) as u64);
        dev.write_reg(5 + i, ((B >> (32 * i)) & 0xffff_ffff) as u64);
    }
    // Sum into r9..r12: ADD then ADC-chain through flag register f1.
    // Difference into r13..r16: SUB then SBB-chain.
    dev.exec_program(
        "ADD r9,  r1, r5, f1
         ADC r10, r2, r6, f1, f1
         ADC r11, r3, r7, f1, f1
         ADC r12, r4, r8, f1, f1
         SUB r13, r1, r5, f2
         SBB r14, r2, r6, f2, f2
         SBB r15, r3, r7, f2, f2
         SBB r16, r4, r8, f2, f2",
    )
    .expect("assembles");

    let read_u128 = |dev: &mut Driver, base: u8| -> u128 {
        (0..4u8).fold(0u128, |acc, i| {
            acc | (dev.read_reg(base + i).unwrap().as_u64() as u128) << (32 * i)
        })
    };
    let sum = read_u128(&mut dev, 9);
    let diff = read_u128(&mut dev, 13);
    (sum, diff, dev.cycles())
}

fn on_128bit() -> (u128, u128, u64) {
    let cfg = CoprocConfig::default().with_word_bits(128);
    let sys = System::new(cfg, standard_units(128), LinkModel::tightly_coupled())
        .expect("valid configuration");
    let mut dev = Driver::new(sys, 10_000_000);
    dev.write_reg_word(1, Word::from_u128(A, 128));
    dev.write_reg_word(2, Word::from_u128(B, 128));
    dev.exec_program(
        "ADD r3, r1, r2, f1
         SUB r4, r1, r2, f2",
    )
    .expect("assembles");
    let sum = dev.read_reg(3).unwrap().as_u128();
    let diff = dev.read_reg(4).unwrap().as_u128();
    (sum, diff, dev.cycles())
}

fn main() {
    let (sum32, diff32, cycles32) = on_32bit();
    let (sum128, diff128, cycles128) = on_128bit();

    println!("A                = {A:#034x}");
    println!("B                = {B:#034x}");
    println!("A+B (32-bit cfg) = {sum32:#034x}   [{cycles32} cycles, 8 instructions]");
    println!("A+B (128-bit cfg)= {sum128:#034x}   [{cycles128} cycles, 2 instructions]");
    println!("A-B (32-bit cfg) = {diff32:#034x}");
    println!("A-B (128-bit cfg)= {diff128:#034x}");

    assert_eq!(sum32, A.wrapping_add(B));
    assert_eq!(diff32, A.wrapping_sub(B));
    assert_eq!(sum128, A.wrapping_add(B));
    assert_eq!(diff128, A.wrapping_sub(B));
    println!("\nboth configurations agree with native 128-bit arithmetic ✓");
}
