//! Defining a *custom* functional unit — the framework's portability
//! story.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example custom_fu
//! ```
//!
//! "The main task for the programmer is to design the functional units.
//! They must interact with the controller according to the framework's
//! protocol, but apart from that requirement, the designer has complete
//! freedom in the internal structure of a functional unit."
//!
//! Here the programmer brings a saturating multiply-accumulate
//! (`d = min(a*b + c, MAX)`) — the kind of DSP inner-loop operation the
//! paper's introduction motivates. Only the combinational kernel is
//! written by hand; the published *minimal* skeleton supplies all the
//! protocol behaviour, and the unit then runs on an unmodified framework.

use fu_host::{Driver, LinkModel, System};
use fu_isa::{Flags, InstrWord, UserInstr, Word};
use fu_rtm::protocol::DispatchPacket;
use fu_rtm::CoprocConfig;
use fu_units::{Kernel, KernelOutput, MinimalFu};
use rtl_sim::{AreaEstimate, CriticalPath};

/// Saturating multiply-accumulate over one register word.
#[derive(Clone)]
struct SatMacKernel;

impl Kernel for SatMacKernel {
    fn name(&self) -> &'static str {
        "sat-mac"
    }

    fn func_code(&self) -> u8 {
        0x40 // a free slot in the function-code space
    }

    fn word_bits(&self) -> u32 {
        32
    }

    fn compute(&self, pkt: &DispatchPacket) -> KernelOutput {
        let a = pkt.ops[0].as_u64();
        let b = pkt.ops[1].as_u64();
        let c = pkt.ops[2].as_u64();
        let full = a * b + c;
        let saturated = full.min(u32::MAX as u64) as u32;
        KernelOutput {
            data: Some(Word::from_u64(saturated as u64, 32)),
            data2: None,
            flags: Some(Flags::from_parts(
                full > u32::MAX as u64, // carry = saturated
                saturated == 0,
                saturated >> 31 == 1,
                full > u32::MAX as u64,
            )),
        }
    }

    fn reads_srcs(&self, _variety: u8) -> [bool; 3] {
        [true, true, true] // all three operand ports, as the RTM allows
    }

    fn area(&self) -> AreaEstimate {
        AreaEstimate {
            les: 32 * 32 / 4,
            ffs: 0,
            bram_bits: 0,
        } + AreaEstimate::adder(64)
    }

    fn critical_path(&self) -> CriticalPath {
        CriticalPath::tree(32, 2).then(CriticalPath::adder(64))
    }
}

fn mac_instr(dst: u8, a: u8, b: u8, c: u8) -> InstrWord {
    InstrWord::user(UserInstr {
        func: 0x40,
        variety: 0,
        dst_flag: 1,
        dst_reg: dst,
        aux_reg: 0,
        src1: a,
        src2: b,
        src3: c,
    })
}

fn main() {
    // Attach the custom unit next to the standard complement.
    let mut units = fu_units::standard_units(32);
    units.push(Box::new(MinimalFu::new(SatMacKernel, false)));

    let system = System::new(CoprocConfig::default(), units, LinkModel::tightly_coupled())
        .expect("valid configuration");
    let mut dev = Driver::new(system, 1_000_000);

    // d = a*b + c, saturating.
    dev.write_reg(1, 100_000);
    dev.write_reg(2, 30_000);
    dev.write_reg(3, 1_234);
    dev.exec(mac_instr(4, 1, 2, 3));
    let v = dev.read_reg(4).expect("mac result").as_u64();
    let f = dev.read_flags(1).expect("flags");
    println!("100000 * 30000 + 1234  = {v} (flags {f})");
    assert_eq!(v, 100_000 * 30_000 + 1_234);
    assert!(!f.carry());

    // Saturating case.
    dev.write_reg(1, u32::MAX as u64);
    dev.write_reg(2, u32::MAX as u64);
    dev.exec(mac_instr(5, 1, 2, 3));
    let v = dev.read_reg(5).expect("mac result").as_u64();
    let f = dev.read_flags(1).expect("flags");
    println!("MAX * MAX + 1234 (sat) = {v} (flags {f})");
    assert_eq!(v, u32::MAX as u64);
    assert!(f.carry(), "saturation reported through the carry flag");

    // The standard units still work beside it.
    dev.exec_asm("ADD r6, r1, r2, f2").expect("assembles");
    println!(
        "ADD beside it          = {}",
        dev.read_reg(6).unwrap().as_u64()
    );
    println!("total FPGA cycles      = {}", dev.cycles());
}
