//! Exporting a waveform of the pipeline — how the original framework was
//! debugged.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example waveform_trace
//! ```
//!
//! The VHDL framework was developed against waveform viewers; this
//! reproduction keeps the same workflow: [`fu_rtm::Coprocessor::probe`]
//! exposes the observable pipeline signals each cycle, and
//! [`rtl_sim::VcdWriter`] turns them into a standard `.vcd` file any
//! waveform viewer (GTKWave etc.) opens. The example traces a short
//! burst of instructions and writes `target/coproc_trace.vcd`.

use fu_isa::{HostMsg, InstrWord, MgmtOp, UserInstr, Word};
use fu_rtm::{CoprocConfig, Coprocessor};
use fu_units::standard_units;
use rtl_sim::VcdWriter;

fn main() {
    let mut coproc = Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 2,
            ..CoprocConfig::default()
        },
        standard_units(32),
    )
    .expect("valid configuration");

    // A small burst: two writes, four instructions, a read-back.
    let msgs = [
        HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(7, 32),
        },
        HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(5, 32),
        },
        HostMsg::Instr(InstrWord::user(UserInstr {
            func: fu_isa::funit_codes::ARITH,
            variety: fu_isa::ArithOp::Add.variety().0,
            dst_flag: 1,
            dst_reg: 3,
            aux_reg: 0,
            src1: 1,
            src2: 2,
            src3: 0,
        })),
        HostMsg::Instr(InstrWord::user(UserInstr {
            func: fu_isa::funit_codes::MUL,
            variety: 0,
            dst_flag: 2,
            dst_reg: 4,
            aux_reg: 5,
            src1: 1,
            src2: 2,
            src3: 0,
        })),
        HostMsg::Instr(MgmtOp::Fence.encode()),
        HostMsg::ReadReg { reg: 3, tag: 1 },
    ];
    let mut frames: std::collections::VecDeque<u32> =
        msgs.iter().flat_map(|m| m.to_frames(32)).collect();

    let mut vcd = VcdWriter::new("coprocessor");
    for (name, width) in [
        ("rx_level", 8),
        ("msg_valid", 1),
        ("decoded_valid", 1),
        ("exec_valid", 1),
        ("resp_valid", 1),
        ("tx_level", 8),
        ("in_flight", 8),
        ("fus_busy", 8),
    ] {
        vcd.declare(name, width);
    }

    let mut cycles = 0u64;
    while !(frames.is_empty() && coproc.is_idle()) && cycles < 2000 {
        while let Some(&f) = frames.front() {
            if coproc.push_frame(f) {
                frames.pop_front();
            } else {
                break;
            }
        }
        coproc.step();
        while coproc.pop_frame().is_some() {}
        let p = coproc.probe();
        vcd.change(cycles, "rx_level", p.rx_level as u64);
        vcd.change(cycles, "msg_valid", p.msg_valid as u64);
        vcd.change(cycles, "decoded_valid", p.decoded_valid as u64);
        vcd.change(cycles, "exec_valid", p.exec_valid as u64);
        vcd.change(cycles, "resp_valid", p.resp_valid as u64);
        vcd.change(cycles, "tx_level", p.tx_level as u64);
        vcd.change(cycles, "in_flight", p.in_flight as u64);
        vcd.change(cycles, "fus_busy", p.fus_busy as u64);
        cycles += 1;
    }

    let text = vcd.finish();
    let path = std::path::Path::new("target").join("coproc_trace.vcd");
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(&path, &text).expect("write VCD");
    println!(
        "traced {cycles} cycles -> {} ({} bytes)",
        path.display(),
        text.len()
    );
    println!(
        "open it with any VCD waveform viewer, e.g. `gtkwave {}`",
        path.display()
    );
    println!("\nfirst lines:");
    for line in text.lines().take(16) {
        println!("  {line}");
    }
    assert_eq!(coproc.peek_reg(3).as_u64(), 12);
}
