//! Floating-point acceleration — the paper's opening example, in
//! assembly.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example floating_point
//! ```
//!
//! "One example of this is to provide floating point operations in
//! hardware, rather than performing them in software." The FPU here is
//! not the host's: it is the reproduction's own IEEE-754 datapath
//! (integer unpack/align/round logic), wrapped in the pipelined skeleton
//! and driven through the coprocessor like any other functional unit.

use fu_host::{Driver, LinkModel, System};
use fu_rtm::{CoprocConfig, FunctionalUnit};
use fu_units::fpu::FpuKernel;

fn bits(v: f32) -> u64 {
    v.to_bits() as u64
}

fn float(d: &mut Driver, reg: u8) -> f32 {
    f32::from_bits(d.read_reg(reg).expect("read").as_u64() as u32)
}

fn main() {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(FpuKernel::recommended_unit(32))];
    let system = System::new(CoprocConfig::default(), units, LinkModel::tightly_coupled())
        .expect("valid configuration");
    let mut dev = Driver::new(system, 10_000_000);

    // Evaluate the polynomial p(x) = 2.5·x² − 3.125·x + 0.75 at x = 1.5
    // with Horner's rule, entirely on the coprocessor FPU.
    let x = 1.5f32;
    dev.write_reg(1, bits(x));
    dev.write_reg(2, bits(2.5));
    dev.write_reg(3, bits(-3.125));
    dev.write_reg(4, bits(0.75));
    dev.exec_program(
        "FMUL r5, r2, r1, f1   ; 2.5 * x
         FADD r5, r5, r3, f1   ; + (-3.125)
         FMUL r5, r5, r1, f1   ; * x
         FADD r5, r5, r4, f1   ; + 0.75",
    )
    .expect("assembles");
    let got = float(&mut dev, 5);
    let expect = (2.5 * x - 3.125) * x + 0.75;
    println!("p({x}) on the coprocessor = {got}");
    println!("p({x}) on the host FPU    = {expect}");
    assert_eq!(got.to_bits(), expect.to_bits(), "bit-exact agreement");

    // Comparison drives the flag register.
    dev.exec_program("FCMP r5, r4, f2").expect("assembles");
    let f = dev.read_flags(2).expect("flags");
    println!("p({x}) < 0.75 ?           = {} (flags {f})", f.carry());
    assert_eq!(f.carry(), got < 0.75);

    println!(
        "\ncompleted in {} FPGA cycles ({:.2} µs at 50 MHz) — every bit of\n\
         the float math came from the simulated integer datapath, not the\n\
         host's floating-point hardware.",
        dev.cycles(),
        fu_host::System::cycles_to_us(dev.cycles(), 50.0)
    );
}
