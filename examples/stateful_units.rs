//! The paper's three stateful-unit examples, working together.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example stateful_units
//! ```
//!
//! "Examples of stateful functional units are histogram calculators,
//! pseudorandom number generators, and associative memories." This demo
//! attaches all three beside the arithmetic unit and builds a small
//! pipeline entirely out of coprocessor instructions: draw random values
//! from the PRNG unit, bucket them in the histogram unit, and memoise
//! per-bucket metadata in the CAM — the host only orchestrates.

use fu_host::{Driver, LinkModel, System};
use fu_isa::{InstrWord, UserInstr};
use fu_rtm::{CoprocConfig, FunctionalUnit};
use fu_units::stateful::{cam, histogram, prng, CamFu, HistogramFu, PrngFu};
use fu_units::{ArithKernel, MinimalFu};

fn unit_instr(func: u8, variety: u8, dst: u8, s1: u8, s2: u8) -> InstrWord {
    InstrWord::user(UserInstr {
        func,
        variety,
        dst_flag: 1,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    })
}

fn main() {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(MinimalFu::new(ArithKernel::new(32), false)),
        Box::new(HistogramFu::new(16, 32)),
        Box::new(PrngFu::new(32)),
        Box::new(CamFu::new(16, 32)),
    ];
    let system = System::new(CoprocConfig::default(), units, LinkModel::tightly_coupled())
        .expect("valid configuration");
    let mut dev = Driver::new(system, 10_000_000);

    // Seed the PRNG and clear the histogram — all device-side state.
    dev.write_reg(1, 0xC0FFEE);
    dev.exec(unit_instr(prng::PRNG_FUNC_CODE, prng::PRNG_SEED, 0, 1, 0));
    dev.exec(unit_instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_CLEAR,
        0,
        0,
        0,
    ));

    // Draw 64 random values; bucket each by its low 4 bits. The PRNG
    // writes r2; the histogram accumulates bin r2 with weight r3=1.
    // Register interlocks order every step automatically.
    dev.write_reg(3, 1);
    for _ in 0..64 {
        dev.exec(unit_instr(prng::PRNG_FUNC_CODE, prng::PRNG_NEXT, 2, 0, 0));
        dev.exec(unit_instr(
            histogram::HIST_FUNC_CODE,
            histogram::HIST_ACCUM,
            0,
            2,
            3,
        ));
    }
    dev.sync().expect("sync");

    // Read the histogram back and memoise the fullest bucket in the CAM.
    println!("histogram of 64 LFSR draws (16 bins over the low 4 bits):");
    let mut best = (0u64, 0u64);
    let mut total = 0u64;
    for bin in 0..16u64 {
        dev.write_reg(4, bin);
        dev.exec(unit_instr(
            histogram::HIST_FUNC_CODE,
            histogram::HIST_READ,
            5,
            4,
            0,
        ));
        let count = dev.read_reg(5).expect("bin").as_u64();
        total += count;
        if count > best.1 {
            best = (bin, count);
        }
        println!("  bin {bin:>2}: {}", "#".repeat(count as usize));
    }
    assert_eq!(total, 64, "every draw lands in exactly one bin");

    // CAM: key = bucket index, value = its count.
    dev.write_reg(6, best.0);
    dev.write_reg(7, best.1);
    dev.exec(unit_instr(cam::CAM_FUNC_CODE, cam::CAM_WRITE, 0, 6, 7));
    dev.exec(unit_instr(cam::CAM_FUNC_CODE, cam::CAM_SEARCH, 8, 6, 0));
    let memo = dev.read_reg(8).expect("cam hit").as_u64();
    let hit = dev.read_flags(1).expect("flags").carry();
    println!(
        "\nfullest bucket: bin {} with {} draws (memoised in the CAM: {memo}, hit={hit})",
        best.0, best.1
    );
    assert!(hit);
    assert_eq!(memo, best.1);
    println!("total FPGA cycles: {}", dev.cycles());
}
