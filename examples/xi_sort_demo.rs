//! The χ-sort stateful functional unit, end to end.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example xi_sort_demo
//! ```
//!
//! "With circuit parallelism, data structures can be active. Each element
//! of the array is stored in a small processor called a cell … This
//! capability enables the χ-sort algorithm to recalculate the index
//! interval of every data item in parallel, at clock speeds."
//!
//! The demo loads an array into the SIMD cell array, runs single
//! refinement rounds so the per-operation cycle counts are visible, and
//! contrasts them with the Θ(n)-per-operation software reference.

use fu_host::baseline::workload;
use fu_host::{Driver, LinkModel, System};
use fu_rtm::CoprocConfig;
use xi_sort::reference::SoftwareXiSort;
use xi_sort::{XiConfig, XiOp, XiSortAdapter, XiSortCore};

fn main() {
    let n = 24;
    let values = workload(42, n, 100);
    println!("input ({n} elements): {values:?}\n");

    // --- Hardware: through the full framework ------------------------
    let system = System::new(
        CoprocConfig::default(),
        vec![Box::new(XiSortAdapter::new(XiConfig::new(32), 32))],
        LinkModel::tightly_coupled(),
    )
    .expect("valid configuration");
    let mut dev = Driver::new(system, 100_000_000);

    dev.xi_load(&values, 1).expect("load");
    let rounds = dev.xi_sort(2).expect("sort");
    let sorted = dev.xi_read_sorted(n, 1, 2).expect("readout");
    println!("FPGA sorted:  {sorted:?}");
    println!(
        "FPGA: {rounds} refinement rounds, {} total cycles ({:.1} µs at 50 MHz)\n",
        dev.cycles(),
        System::cycles_to_us(dev.cycles(), 50.0),
    );
    let mut expect = values.clone();
    expect.sort_unstable();
    assert_eq!(sorted, expect);

    // --- Per-operation cycle counts (the paper's key claim) ----------
    println!("cycles per single refinement round (SortStep), by array size:");
    println!("{:>8} {:>14} {:>20}", "n", "FPGA cycles", "software visits");
    for n in [8u32, 32, 128, 512] {
        let vals = workload(7, n as usize, 1 << 20);
        let mut core = XiSortCore::new(XiConfig::new(n));
        core.dispatch(XiOp::Reset, 0);
        for v in &vals {
            core.dispatch(XiOp::Push, *v);
        }
        core.dispatch(XiOp::InitBounds, 0);
        core.run_to_completion(100_000);
        core.dispatch(XiOp::SortStep, 0);
        core.run_to_completion(100_000);

        let mut sw = SoftwareXiSort::new(&vals);
        let p = sw.find_pivot(None).expect("imprecise");
        sw.visits = 0;
        sw.partition_step(p);
        println!("{:>8} {:>14} {:>20}", n, core.op_cycles(), sw.visits);
    }
    println!(
        "\nThe FPGA column is constant — \"each operation takes a fixed number\n\
         of clock cycles\" — while the CPU column grows linearly with n."
    );
}
