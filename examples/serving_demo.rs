//! Two tenants share one coprocessor farm through the serving front-end.
//!
//! `batch` is a weight-4 tenant blasting a heavy burst; `interactive` is
//! a weight-1 tenant trickling requests. Both feed bounded queues in
//! front of a two-shard farm: when the batch burst overruns its queue
//! the service sheds in-band (the submitter is told immediately), and
//! deficit-round-robin keeps the interactive tenant's latency flat even
//! while the batch tenant saturates the shards. The printed SLO snapshot
//! shows the whole story: per-tenant p50/p99 latency, throughput and
//! shed rate.
//!
//! ```text
//! cargo run --release -p bench --example serving_demo
//! ```

use fu_host::serve::workload::client_job;
use fu_host::{
    Admission, Farm, FarmConfig, LinkModel, Placement, ServeConfig, Service, TenantSpec,
};
use fu_rtm::CoprocConfig;

const FPGA_MHZ: f64 = 50.0;

fn main() {
    let farm = Farm::standard(
        FarmConfig {
            shards: 2,
            seed: 0xDE30,
            placement: Placement::LeastLoaded,
            ..FarmConfig::default()
        },
        CoprocConfig::default(),
        LinkModel::pcie_like(),
    );
    let mut svc = Service::new(
        ServeConfig {
            queue_depth: 16,
            quantum: 8,
            round_jobs: 32,
            parallel: true,
        },
        vec![
            TenantSpec::new("batch", 4),
            TenantSpec::new("interactive", 1),
        ],
        farm,
    )
    .expect("valid service");

    // The batch tenant fires bursts of 24 jobs every 10k cycles; the
    // interactive tenant submits one job every 2k cycles. Jobs are the
    // self-verifying add-two-operands workload from the E17 generator.
    let mut shed = 0u64;
    let mut completions = Vec::new();
    for burst in 0u32..12 {
        let t0 = u64::from(burst) * 10_000;
        for k in 0u32..24 {
            let (job, _) = client_job(burst * 100 + k, k, k as u16);
            match svc.submit(0, t0, job).expect("submit") {
                Admission::Admitted { .. } => {}
                Admission::Overloaded { .. } => shed += 1,
            }
        }
        for k in 0u32..5 {
            let (job, _) = client_job(7 * burst, k, (200 + k) as u16);
            let tick = t0 + u64::from(k) * 2_000;
            if let Admission::Overloaded { .. } = svc.submit(1, tick, job).expect("submit") {
                shed += 1;
            }
        }
        // An epoll-style front-end collects whatever finished so far.
        completions.extend(svc.poll());
    }
    completions.extend(svc.drain().expect("drain"));

    println!(
        "served {} completions over {} virtual cycles ({} rounds); {shed} submissions shed in-band\n",
        completions.len(),
        svc.clock(),
        svc.stats().rounds
    );
    println!(
        "{:<12} {:>6} {:>9} {:>8} {:>5} {:>10} {:>10} {:>10} {:>8}",
        "tenant",
        "weight",
        "submitted",
        "complete",
        "shed",
        "p50 (cyc)",
        "p99 (cyc)",
        "ops/sec",
        "shed %"
    );
    for slo in svc.slo(FPGA_MHZ) {
        println!(
            "{:<12} {:>6} {:>9} {:>8} {:>5} {:>10} {:>10} {:>10.0} {:>7.1}%",
            slo.name,
            slo.weight,
            slo.submitted,
            slo.completed,
            slo.shed,
            slo.latency.p50,
            slo.latency.p99,
            slo.ops_per_sec,
            slo.shed_rate * 100.0
        );
    }
    println!(
        "\nThe interactive tenant's p99 stays near its p50 — deficit-round-robin\n\
         keeps its queue moving while the batch tenant saturates the farm and\n\
         absorbs the shedding its own burstiness causes."
    );
}
