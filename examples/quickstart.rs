//! Quickstart: assemble a coprocessor, issue an instruction, read the
//! result.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example quickstart
//! ```
//!
//! This is the paper's Figure 1 in miniature: the "main program" (this
//! file) runs on the host, communicates over a link with the generic
//! interface (the RTM), which controls the functional units.

use fu_host::{Driver, LinkModel, System};
use fu_rtm::CoprocConfig;
use fu_units::standard_units;

fn main() {
    // 1. Configure the framework — these are the VHDL generics: word
    //    size, register counts, port widths.
    let config = CoprocConfig::default(); // 32-bit words, 32 registers

    // 2. Attach functional units (arithmetic, logic, shift, multiplier,
    //    popcount) and pick an interconnect model.
    let system = System::new(config, standard_units(32), LinkModel::pcie_like())
        .expect("valid configuration");

    // 3. The driver gives the host program a coprocessor-style API.
    let mut dev = Driver::new(system, 1_000_000);

    // 4. Move operands into the register file, run instructions, read
    //    results back — "similarly to the way it would use any
    //    conventional coprocessor".
    dev.write_reg(1, 1200);
    dev.write_reg(2, 34);
    dev.exec_program(
        "ADD r3, r1, r2, f1   ; r3 = r1 + r2, flags to f1
         MUL r4, r5, r1, r2   ; r4/r5 = low/high of r1 * r2
         POPCNT r6, r3        ; r6 = ones in r3",
    )
    .expect("assembles");

    let sum = dev.read_reg(3).expect("sum").as_u64();
    let prod_lo = dev.read_reg(4).expect("prod").as_u64();
    let ones = dev.read_reg(6).expect("popcount").as_u64();
    let flags = dev.read_flags(1).expect("flags");

    println!("1200 + 34      = {sum}    (flags {flags})");
    println!("1200 * 34      = {prod_lo}");
    println!("popcount(1234) = {ones}");
    println!(
        "completed in {} FPGA cycles ({:.2} µs at 50 MHz)",
        dev.cycles(),
        System::cycles_to_us(dev.cycles(), 50.0)
    );

    assert_eq!(sum, 1234);
    assert_eq!(prod_lo, 40_800);
    assert_eq!(ones, 1234u64.count_ones() as u64);
}
