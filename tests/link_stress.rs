//! Link and flow-control stress: no message may be lost, duplicated or
//! reordered regardless of link timing, FIFO sizing or port width — the
//! paper's local-handshake correctness argument, exercised end to end.

mod util;

use fu_host::{LinkModel, System};
use fu_isa::{DevMsg, HostMsg, Word};
use fu_rtm::CoprocConfig;
use rtl_sim::StallFuzzer;

fn stress(cfg: CoprocConfig, link: LinkModel, n_msgs: u32, seed: u64) {
    let mut sys = System::new(cfg, vec![], link).unwrap();
    let wb = sys.word_bits();
    let mut rng = StallFuzzer::new(seed, 0.0);
    let mut expected = Vec::new();
    // A mixture of writes and tagged reads; every read's answer is
    // predictable from the preceding writes.
    let mut shadow = [0u64; 8];
    let mut tag = 0u16;
    for _ in 0..n_msgs {
        let reg = rng.below(8) as u8;
        if rng.below(2) == 0 {
            let v = rng.next_u64() & 0xffff_ffff;
            shadow[reg as usize] = v;
            sys.send(&HostMsg::WriteReg {
                reg,
                value: Word::from_u64(v, wb),
            });
        } else {
            sys.send(&HostMsg::ReadReg { reg, tag });
            expected.push(DevMsg::Data {
                tag,
                value: Word::from_u64(shadow[reg as usize], wb),
            });
            tag = tag.wrapping_add(1);
        }
    }
    sys.send(&HostMsg::Sync { tag: 0xffff });
    expected.push(DevMsg::SyncAck { tag: 0xffff });

    let got = util::drain_responses(&mut sys, expected.len(), util::STREAM_BUDGET);
    assert_eq!(got, expected, "response stream corrupted (seed {seed})");
    util::settle(&mut sys, util::SETTLE_BUDGET);
}

#[test]
fn ideal_link_large_stream() {
    stress(CoprocConfig::default(), LinkModel::ideal(), 400, 1);
}

#[test]
fn tiny_fifos_under_pressure() {
    let cfg = CoprocConfig {
        rx_fifo_depth: 1,
        tx_fifo_depth: 1,
        ..CoprocConfig::default()
    };
    stress(cfg.clone(), LinkModel::ideal(), 150, 2);
    stress(cfg, LinkModel::tightly_coupled(), 150, 3);
}

#[test]
fn prototyping_link_small_stream() {
    stress(CoprocConfig::default(), LinkModel::prototyping(), 30, 4);
}

#[test]
fn pcie_link_medium_stream() {
    stress(CoprocConfig::default(), LinkModel::pcie_like(), 200, 5);
}

#[test]
fn wide_words_with_narrow_fifos() {
    let cfg = CoprocConfig {
        rx_fifo_depth: 2,
        tx_fifo_depth: 2,
        ..CoprocConfig::default()
    }
    .with_word_bits(128);
    stress(cfg, LinkModel::tightly_coupled(), 80, 6);
}

#[test]
fn many_seeds_quick_sweep() {
    for seed in 10..20 {
        stress(
            CoprocConfig::default(),
            LinkModel::tightly_coupled(),
            60,
            seed,
        );
    }
}
