//! Framework genericity (experiment E10): the same functional units and
//! the same host program run unmodified across framework configurations —
//! word size, register counts, port widths, link models — which is the
//! paper's central portability claim ("the interface is generic, making
//! it reusable across projects").

use fu_host::{Driver, LinkModel, System};
use fu_rtm::CoprocConfig;
use fu_units::standard_units;
use xi_sort::{XiConfig, XiSortAdapter};

/// The fixed host program every configuration must satisfy.
fn exercise(mut d: Driver) {
    // Arithmetic through the adder.
    d.write_reg(1, 1000);
    d.write_reg(2, 58);
    d.exec_asm("SUB r3, r1, r2, f1").unwrap();
    assert_eq!(d.read_reg(3).unwrap().as_u64(), 942);
    // Logic.
    d.exec_asm("XOR r4, r1, r2").unwrap();
    assert_eq!(d.read_reg(4).unwrap().as_u64(), 1000 ^ 58);
    // Shift with immediate.
    d.exec_asm("SHL r5, r2, #4").unwrap();
    assert_eq!(d.read_reg(5).unwrap().as_u64(), 58 << 4);
    // Widening multiply (two destinations).
    d.exec_asm("MUL r6, r7, r1, r2").unwrap();
    assert_eq!(d.read_reg(6).unwrap().as_u64(), 58_000);
    assert_eq!(d.read_reg(7).unwrap().as_u64(), 0);
    // Popcount (the "user" unit).
    d.exec_asm("POPCNT r8, r1").unwrap();
    assert_eq!(d.read_reg(8).unwrap().as_u64(), 1000u64.count_ones() as u64);
    // Multi-cycle divide with quotient + remainder.
    d.exec_asm("DIV r9, r10, r1, r2").unwrap();
    assert_eq!(d.read_reg(9).unwrap().as_u64(), 1000 / 58);
    assert_eq!(d.read_reg(10).unwrap().as_u64(), 1000 % 58);
    d.sync().unwrap();
}

#[test]
fn same_units_same_program_every_word_size() {
    for bits in [32u32, 64, 96, 128] {
        let cfg = CoprocConfig::default().with_word_bits(bits);
        let sys = System::new(cfg, standard_units(bits), LinkModel::tightly_coupled()).unwrap();
        exercise(Driver::new(sys, 5_000_000));
    }
}

#[test]
fn register_file_sizes_are_generics() {
    for (data_regs, flag_regs) in [(12u16, 3u16), (32, 8), (256, 256)] {
        let cfg = CoprocConfig::default()
            .with_data_regs(data_regs)
            .with_flag_regs(flag_regs);
        let sys = System::new(cfg, standard_units(32), LinkModel::tightly_coupled()).unwrap();
        exercise(Driver::new(sys, 5_000_000));
    }
}

#[test]
fn every_link_preset_runs_the_program() {
    for link in LinkModel::presets() {
        let sys = System::new(CoprocConfig::default(), standard_units(32), link).unwrap();
        exercise(Driver::new(sys, 50_000_000));
    }
}

#[test]
fn stateless_and_stateful_units_coexist() {
    // The full complement plus the χ-sort engine on one FPGA.
    let mut units = standard_units(32);
    units.push(Box::new(XiSortAdapter::new(XiConfig::new(32), 32)));
    let sys = System::new(CoprocConfig::default(), units, LinkModel::tightly_coupled()).unwrap();
    let mut d = Driver::new(sys, 50_000_000);
    // Interleave arithmetic with a χ-sort run.
    d.write_reg(1, 5);
    d.exec_asm("ADD r2, r1, r1, f1").unwrap();
    d.xi_load(&[30, 10, 20], 3).unwrap();
    d.exec_asm("INC r2, r2, f1").unwrap();
    d.xi_sort(4).unwrap();
    assert_eq!(d.read_reg(2).unwrap().as_u64(), 11);
    assert_eq!(d.xi_read_sorted(3, 3, 4).unwrap(), vec![10, 20, 30]);
}

#[test]
fn wide_words_through_xi_adapter_transcode() {
    // The χ-sort adapter "uses 32-bit data records and transcodes data as
    // needed" — here against a 128-bit register file.
    let cfg = CoprocConfig::default().with_word_bits(128);
    let sys = System::new(
        cfg,
        vec![Box::new(XiSortAdapter::new(XiConfig::new(16), 128))],
        LinkModel::tightly_coupled(),
    )
    .unwrap();
    let mut d = Driver::new(sys, 50_000_000);
    d.xi_load(&[7, 3, 5], 1).unwrap();
    d.xi_sort(2).unwrap();
    assert_eq!(d.xi_read_sorted(3, 1, 2).unwrap(), vec![3, 5, 7]);
}

#[test]
fn area_reports_scale_with_configuration() {
    let small = fu_rtm::Coprocessor::new(CoprocConfig::default(), standard_units(32)).unwrap();
    let big = fu_rtm::Coprocessor::new(
        CoprocConfig::default()
            .with_word_bits(128)
            .with_data_regs(128),
        standard_units(128),
    )
    .unwrap();
    assert!(big.area().components() > 2 * small.area().components());
    // The framework area is a modest fraction; the units dominate as the
    // paper intends ("requiring as small a portion of the FPGA as
    // possible").
    let fw = small.framework_area().components();
    let total = small.area().components();
    assert!(fw < total, "units contribute area on top of the framework");
}
