//! Backpressure fuzzing of the whole machine: the paper's local-handshake
//! design must tolerate *any* pattern of stalls without losing,
//! duplicating or reordering work. The host randomly withholds frame
//! delivery and randomly refuses to drain the transmit FIFO; tiny FIFOs
//! make the backpressure propagate all the way up the pipeline.

use fu_isa::msg::DevDeframer;
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::{CoprocConfig, Coprocessor};
use fu_units::standard_units;
use rtl_sim::StallFuzzer;

/// Run a compute-and-readback workload under random host stalls.
fn fuzz_run(seed: u64, stall_p: f64, n_ops: u32) {
    let cfg = CoprocConfig {
        rx_fifo_depth: 2,
        tx_fifo_depth: 2,
        rx_frames_per_cycle: 1,
        tx_frames_per_cycle: 1,
        ..CoprocConfig::default()
    };
    let mut coproc = Coprocessor::new(cfg, standard_units(32)).unwrap();
    let mut rx_fuzz = StallFuzzer::new(seed, stall_p);
    let mut tx_fuzz = StallFuzzer::new(seed ^ 0xabcdef, stall_p);
    let mut workload = StallFuzzer::new(seed ^ 0x55, 0.0);

    // Build the message stream and the expected responses.
    let mut msgs: Vec<HostMsg> = Vec::new();
    let mut expected: Vec<DevMsg> = Vec::new();
    let mut a = 1u64;
    let mut b = 2u64;
    msgs.push(HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(a, 32),
    });
    msgs.push(HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(b, 32),
    });
    for i in 0..n_ops {
        // Alternate ADD and XOR over r1/r2 into r3, read it back.
        let (func, variety, expect) = if workload.below(2) == 0 {
            (
                fu_isa::funit_codes::ARITH,
                fu_isa::ArithOp::Add.variety().0,
                (a + b) & 0xffff_ffff,
            )
        } else {
            (
                fu_isa::funit_codes::LOGIC,
                fu_isa::LogicOp::Xor.variety().0,
                a ^ b,
            )
        };
        msgs.push(HostMsg::Instr(InstrWord::user(UserInstr {
            func,
            variety,
            dst_flag: 1,
            dst_reg: 3,
            aux_reg: 0,
            src1: 1,
            src2: 2,
            src3: 0,
        })));
        msgs.push(HostMsg::ReadReg {
            reg: 3,
            tag: i as u16,
        });
        expected.push(DevMsg::Data {
            tag: i as u16,
            value: Word::from_u64(expect, 32),
        });
        // Rotate operands through writes.
        a = expect;
        msgs.push(HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(a, 32),
        });
        b = (b * 7 + 3) & 0xffff_ffff;
        msgs.push(HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(b, 32),
        });
    }

    let mut frames: std::collections::VecDeque<u32> =
        msgs.iter().flat_map(|m| m.to_frames(32)).collect();
    let mut deframer = DevDeframer::new(32);
    let mut got: Vec<DevMsg> = Vec::new();
    let mut budget: u64 = 4_000_000;
    while got.len() < expected.len() {
        // Host sometimes refuses to feed…
        if !rx_fuzz.stall() {
            while let Some(&f) = frames.front() {
                if coproc.push_frame(f) {
                    frames.pop_front();
                } else {
                    break;
                }
            }
        }
        coproc.step();
        // …and sometimes refuses to drain.
        if !tx_fuzz.stall() {
            while let Some(f) = coproc.pop_frame() {
                if let Some(m) = deframer.push(f).unwrap() {
                    got.push(m);
                }
            }
        }
        budget -= 1;
        assert!(budget > 0, "fuzz run wedged (seed {seed}, p {stall_p})");
    }
    assert_eq!(got, expected, "response stream corrupted (seed {seed})");
}

#[test]
fn light_backpressure() {
    for seed in 0..4 {
        fuzz_run(seed, 0.2, 40);
    }
}

#[test]
fn heavy_backpressure() {
    for seed in 10..13 {
        fuzz_run(seed, 0.8, 25);
    }
}

#[test]
fn pathological_backpressure() {
    // 97% stall probability: the machine crawls but must stay correct.
    fuzz_run(42, 0.97, 8);
}

#[test]
fn no_backpressure_baseline() {
    fuzz_run(7, 0.0, 60);
}
