//! Backpressure fuzzing of the whole machine: the paper's local-handshake
//! design must tolerate *any* pattern of stalls without losing,
//! duplicating or reordering work. The host randomly withholds frame
//! delivery and randomly refuses to drain the transmit FIFO; tiny FIFOs
//! make the backpressure propagate all the way up the pipeline.
//!
//! The second half fuzzes the *serving front-end* the same way: random
//! bursts into bounded tenant queues (admission shedding), one shard an
//! order of magnitude slower than the rest (a stalled shard must convoy
//! jobs, never lose them), random poll cadence, and random mid-session
//! disconnects — after which the service must settle to idle with every
//! job accounted for, and replay bit-identically from the same seed.

use fu_isa::msg::DevDeframer;
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::{CoprocConfig, Coprocessor};
use fu_units::standard_units;
use rtl_sim::StallFuzzer;

/// Run a compute-and-readback workload under random host stalls.
fn fuzz_run(seed: u64, stall_p: f64, n_ops: u32) {
    let cfg = CoprocConfig {
        rx_fifo_depth: 2,
        tx_fifo_depth: 2,
        rx_frames_per_cycle: 1,
        tx_frames_per_cycle: 1,
        ..CoprocConfig::default()
    };
    let mut coproc = Coprocessor::new(cfg, standard_units(32)).unwrap();
    let mut rx_fuzz = StallFuzzer::new(seed, stall_p);
    let mut tx_fuzz = StallFuzzer::new(seed ^ 0xabcdef, stall_p);
    let mut workload = StallFuzzer::new(seed ^ 0x55, 0.0);

    // Build the message stream and the expected responses.
    let mut msgs: Vec<HostMsg> = Vec::new();
    let mut expected: Vec<DevMsg> = Vec::new();
    let mut a = 1u64;
    let mut b = 2u64;
    msgs.push(HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(a, 32),
    });
    msgs.push(HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(b, 32),
    });
    for i in 0..n_ops {
        // Alternate ADD and XOR over r1/r2 into r3, read it back.
        let (func, variety, expect) = if workload.below(2) == 0 {
            (
                fu_isa::funit_codes::ARITH,
                fu_isa::ArithOp::Add.variety().0,
                (a + b) & 0xffff_ffff,
            )
        } else {
            (
                fu_isa::funit_codes::LOGIC,
                fu_isa::LogicOp::Xor.variety().0,
                a ^ b,
            )
        };
        msgs.push(HostMsg::Instr(InstrWord::user(UserInstr {
            func,
            variety,
            dst_flag: 1,
            dst_reg: 3,
            aux_reg: 0,
            src1: 1,
            src2: 2,
            src3: 0,
        })));
        msgs.push(HostMsg::ReadReg {
            reg: 3,
            tag: i as u16,
        });
        expected.push(DevMsg::Data {
            tag: i as u16,
            value: Word::from_u64(expect, 32),
        });
        // Rotate operands through writes.
        a = expect;
        msgs.push(HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(a, 32),
        });
        b = (b * 7 + 3) & 0xffff_ffff;
        msgs.push(HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(b, 32),
        });
    }

    let mut frames: std::collections::VecDeque<u32> =
        msgs.iter().flat_map(|m| m.to_frames(32)).collect();
    let mut deframer = DevDeframer::new(32);
    let mut got: Vec<DevMsg> = Vec::new();
    let mut budget: u64 = 4_000_000;
    while got.len() < expected.len() {
        // Host sometimes refuses to feed…
        if !rx_fuzz.stall() {
            while let Some(&f) = frames.front() {
                if coproc.push_frame(f) {
                    frames.pop_front();
                } else {
                    break;
                }
            }
        }
        coproc.step();
        // …and sometimes refuses to drain.
        if !tx_fuzz.stall() {
            while let Some(f) = coproc.pop_frame() {
                if let Some(m) = deframer.push(f).unwrap() {
                    got.push(m);
                }
            }
        }
        budget -= 1;
        assert!(budget > 0, "fuzz run wedged (seed {seed}, p {stall_p})");
    }
    assert_eq!(got, expected, "response stream corrupted (seed {seed})");
}

#[test]
fn light_backpressure() {
    for seed in 0..4 {
        fuzz_run(seed, 0.2, 40);
    }
}

#[test]
fn heavy_backpressure() {
    for seed in 10..13 {
        fuzz_run(seed, 0.8, 25);
    }
}

#[test]
fn pathological_backpressure() {
    // 97% stall probability: the machine crawls but must stay correct.
    fuzz_run(42, 0.97, 8);
}

#[test]
fn no_backpressure_baseline() {
    fuzz_run(7, 0.0, 60);
}

// ---------------------------------------------------------------------
// Serving front-end fuzz: the same philosophy one layer up. Queue-full
// shedding, a crawling shard and disconnects are all "stalls" the
// front-end must absorb without losing or duplicating work.
// ---------------------------------------------------------------------

use fu_host::serve::workload::client_job;
use fu_host::{
    Admission, Completion, Farm, FarmConfig, JobOutput, LinkModel, Placement, ServeConfig, Service,
    System, TenantSpec,
};
/// A farm whose shard 0 runs over the paper's slow prototyping link
/// while the others get the ideal link: the serving layer's version of a
/// stalled pipeline stage.
fn lopsided_farm(shards: usize, seed: u64) -> Farm {
    Farm::new(
        FarmConfig {
            shards,
            seed,
            placement: Placement::LeastLoaded,
            ..FarmConfig::default()
        },
        |ctx| {
            let link = if ctx.index == 0 {
                LinkModel::prototyping()
            } else {
                LinkModel::ideal()
            };
            System::new(CoprocConfig::default(), standard_units(32), link)
        },
    )
}

/// One fuzzed serving session. Returns the full observable outcome so
/// the caller can check determinism by replaying the seed.
fn serve_fuzz(seed: u64) -> (Vec<Completion>, rtl_sim::ServeStats, u64) {
    let tenants = 3u32;
    let mut svc = Service::new(
        ServeConfig {
            queue_depth: 4, // tiny: admission shedding fires constantly
            quantum: 8,
            round_jobs: 8,
            parallel: true,
        },
        (0..tenants)
            .map(|t| TenantSpec::new(format!("t{t}"), t + 1))
            .collect(),
        lopsided_farm(3, seed),
    )
    .expect("valid service");

    let mut fz = StallFuzzer::new(seed ^ 0x5EB_F00D, 0.0);
    let mut tick = 0u64;
    let mut admitted = 0u64;
    let mut shed = 0u64;
    let mut expected: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut done: Vec<Completion> = Vec::new();
    for i in 0..250u32 {
        // Bursty arrivals: usually a tiny gap, sometimes a long pause.
        tick += if fz.below(8) == 0 {
            2_000 + fz.below(4_000)
        } else {
            fz.below(120)
        };
        let tenant = (fz.below(u64::from(tenants))) as u32;
        let (job, want) = client_job((i * 3) % 1000, (fz.below(512)) as u32, (i % 200) as u16);
        match svc.submit(tenant, tick, job).expect("submit") {
            Admission::Admitted { seq } => {
                admitted += 1;
                expected.insert(seq, want);
            }
            Admission::Overloaded { .. } => shed += 1,
        }
        // A client occasionally hangs up mid-session…
        if fz.below(60) == 0 {
            svc.disconnect(tenant);
        }
        // …and the front-end polls on its own erratic schedule.
        if fz.below(3) == 0 {
            done.extend(svc.poll());
        }
    }
    done.extend(svc.drain().expect("drain"));

    // Settle check — the serving analogue of `assert_parks_clean`: no
    // queued work, no unclaimed completions, every admitted job resolved.
    assert!(svc.is_idle(), "service failed to settle (seed {seed})");
    assert_eq!(svc.pending_completions(), 0);
    let t = svc.stats().totals();
    assert_eq!(t.submitted, 250);
    assert_eq!((t.admitted, t.shed), (admitted, shed));
    assert!(t.shed > 0, "queue-full shedding never fired (seed {seed})");
    assert!(
        t.cancelled > 0,
        "disconnects never caught queued work (seed {seed})"
    );
    assert_eq!(t.in_queue(), 0, "jobs left in limbo (seed {seed})");
    assert_eq!(
        t.failed, 0,
        "a slow shard must convoy, not fail (seed {seed})"
    );
    assert_eq!(t.completed, done.len() as u64);
    assert_eq!(t.completed + t.cancelled, admitted);

    // Every delivered completion is unique, was admitted, and carries
    // the bit-exact expected payload.
    for c in &done {
        let want = expected
            .remove(&c.seq)
            .expect("completion for an unadmitted or duplicated seq");
        match &c.output {
            Ok(JobOutput::Msgs(msgs)) => match &msgs[..] {
                [DevMsg::Data { value, .. }] => {
                    assert_eq!(value.as_u64(), want, "seq {} corrupted", c.seq)
                }
                other => panic!("seq {}: unexpected responses {other:?}", c.seq),
            },
            other => panic!("seq {}: failed: {other:?}", c.seq),
        }
    }
    assert_eq!(
        expected.len() as u64,
        t.cancelled,
        "every unresolved seq must be an accounted cancellation (seed {seed})"
    );
    (done, svc.stats().clone(), svc.clock())
}

#[test]
fn serving_front_end_absorbs_fuzzed_load() {
    for seed in 0..3 {
        serve_fuzz(seed);
    }
}

#[test]
fn serving_fuzz_replays_bit_identically() {
    assert_eq!(serve_fuzz(11), serve_fuzz(11));
}
