//! Full-system tests for the paper's stateful-unit examples (histogram,
//! PRNG, CAM) and the clock-domain wrapper: cross-unit interlock
//! ordering, persistence across instruction streams, and error paths.

use fu_host::{Driver, LinkModel, System};
use fu_isa::{funit_codes, InstrWord, UserInstr};
use fu_rtm::{CoprocConfig, FunctionalUnit};
use fu_units::stateful::{cam, histogram, prng, CamFu, HistogramFu, PrngFu};
use fu_units::{ArithKernel, ClockDomainFu, MinimalFu};

fn instr(func: u8, variety: u8, dst: u8, s1: u8, s2: u8) -> InstrWord {
    InstrWord::user(UserInstr {
        func,
        variety,
        dst_flag: 1,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    })
}

fn full_driver() -> Driver {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(MinimalFu::new(ArithKernel::new(32), false)),
        Box::new(HistogramFu::new(8, 32)),
        Box::new(PrngFu::new(32)),
        Box::new(CamFu::new(8, 32)),
    ];
    let sys = System::new(CoprocConfig::default(), units, LinkModel::tightly_coupled()).unwrap();
    Driver::new(sys, 10_000_000)
}

#[test]
fn prng_feeds_histogram_through_interlocks() {
    // PRNG writes r2; histogram reads r2 — the RAW interlock must order
    // each pair even though both are multi-cycle stateful units.
    let mut d = full_driver();
    d.write_reg(1, 42);
    d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_SEED, 0, 1, 0));
    d.exec(instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_CLEAR,
        0,
        0,
        0,
    ));
    d.write_reg(3, 1);
    for _ in 0..32 {
        d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_NEXT, 2, 0, 0));
        d.exec(instr(
            histogram::HIST_FUNC_CODE,
            histogram::HIST_ACCUM,
            0,
            2,
            3,
        ));
    }
    d.exec(instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_TOTAL,
        4,
        0,
        0,
    ));
    let total = d.read_reg(4).unwrap().as_u64();
    assert_eq!(total, 32, "every draw must land in exactly one bin");
}

#[test]
fn prng_sequence_matches_reference_model() {
    let mut d = full_driver();
    d.write_reg(1, 0xdead);
    d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_SEED, 0, 1, 0));
    let mut expect = 0xdeadu32;
    for _ in 0..8 {
        expect = fu_units::stateful::prng::lfsr_step(expect);
        d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_NEXT, 2, 0, 0));
        assert_eq!(d.read_reg(2).unwrap().as_u64(), expect as u64);
    }
}

#[test]
fn cam_state_persists_across_streams() {
    let mut d = full_driver();
    d.write_reg(1, 0xfeed);
    d.write_reg(2, 1234);
    d.exec(instr(cam::CAM_FUNC_CODE, cam::CAM_WRITE, 0, 1, 2));
    d.sync().unwrap();
    // A completely separate burst of unrelated work…
    d.exec_asm("ADD r5, r1, r2, f2").unwrap();
    assert_eq!(d.read_reg(5).unwrap().as_u64(), 0xfeed + 1234);
    // …then the CAM still answers.
    d.exec(instr(cam::CAM_FUNC_CODE, cam::CAM_SEARCH, 6, 1, 0));
    assert_eq!(d.read_reg(6).unwrap().as_u64(), 1234);
    assert!(d.read_flags(1).unwrap().carry(), "hit");
}

#[test]
fn cam_full_error_reaches_host_flags() {
    let mut d = full_driver();
    for k in 0..9u64 {
        d.write_reg(1, k + 100);
        d.write_reg(2, k);
        d.exec(instr(cam::CAM_FUNC_CODE, cam::CAM_WRITE, 0, 1, 2));
    }
    d.sync().unwrap();
    // 9th write into an 8-entry CAM: error flag set in f1.
    assert!(d.read_flags(1).unwrap().error());
}

#[test]
fn histogram_read_waits_for_accumulate() {
    // HIST_READ after HIST_ACCUM to the same unit: unit-busy interlock
    // (not register locks) must order them.
    let mut d = full_driver();
    d.exec(instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_CLEAR,
        0,
        0,
        0,
    ));
    d.write_reg(1, 3);
    d.write_reg(2, 7);
    d.exec(instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_ACCUM,
        0,
        1,
        2,
    ));
    d.exec(instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_READ,
        4,
        1,
        0,
    ));
    assert_eq!(d.read_reg(4).unwrap().as_u64(), 7);
}

#[test]
fn clock_domain_unit_in_full_system() {
    // The arithmetic unit at clock/4 behind the crossing wrapper: slower
    // but architecturally identical.
    let make = |divider: u32| -> Driver {
        let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(ClockDomainFu::new(
            MinimalFu::new(ArithKernel::new(32), false),
            divider,
        ))];
        let sys =
            System::new(CoprocConfig::default(), units, LinkModel::tightly_coupled()).unwrap();
        Driver::new(sys, 10_000_000)
    };
    let run = |mut d: Driver| -> (u64, u64) {
        d.write_reg(1, 30);
        d.write_reg(2, 12);
        for i in 0..10u8 {
            d.exec(instr(
                funit_codes::ARITH,
                fu_isa::ArithOp::Add.variety().0,
                3 + (i % 4),
                1,
                2,
            ));
        }
        d.sync().unwrap();
        let v = d.read_reg(3).unwrap().as_u64();
        (v, d.cycles())
    };
    let (v1, c1) = run(make(1));
    let (v4, c4) = run(make(4));
    assert_eq!(v1, 42);
    assert_eq!(v4, 42, "slow domain computes identical results");
    assert!(
        c4 > c1,
        "clock/4 unit costs more system cycles ({c1} -> {c4})"
    );
}

#[test]
fn stateful_units_reset_with_the_machine() {
    let mut d = full_driver();
    d.write_reg(1, 5);
    d.write_reg(2, 50);
    d.exec(instr(cam::CAM_FUNC_CODE, cam::CAM_WRITE, 0, 1, 2));
    d.exec(instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_ACCUM,
        0,
        1,
        2,
    ));
    d.sync().unwrap();
    // Machine-level reset clears unit-local persistent state too.
    let mut sys = d.into_system();
    sys.run_until(1000, |s| s.is_idle()).unwrap();
    // (Coprocessor::reset is exercised in fu-rtm's own tests; here we
    // assert the stateful units expose reset through the trait.)
    use rtl_sim::Clocked;
    let mut cam = CamFu::new(4, 32);
    cam.reset();
    assert_eq!(cam.live(), 0);
}
