//! Shared polling helpers for the root integration tests.
//!
//! Every test that pumps a simulation waits the same way — step, collect
//! responses, and fail loudly when a cycle budget expires — so the loop
//! lives here once instead of being re-invented (with subtly different
//! panic messages) in every test file. Each test binary includes this
//! module with `mod util;` and uses its own subset of the helpers.

use fu_host::System;
use fu_isa::DevMsg;

/// Cycle budget for every blocking [`fu_host::Driver`] call in the root
/// tests. Generous: a budget expiry here means a hang, not a slow link.
#[allow(dead_code)]
pub const DRIVER_TIMEOUT: u64 = 5_000_000;

/// Cycle budget for draining a long randomized response stream.
#[allow(dead_code)]
pub const STREAM_BUDGET: u64 = 60_000_000;

/// Cycle budget for settling an already-drained system to idle.
#[allow(dead_code)]
pub const SETTLE_BUDGET: u64 = 10_000;

/// Consume a driver and check the underlying system parks cleanly: no
/// queued frames, no in-flight responses, within [`SETTLE_BUDGET`].
///
/// # Panics
/// When the system fails to reach idle, or an unclaimed response is
/// still sitting in the host queue — both mean a test left dangling
/// traffic behind.
#[allow(dead_code)]
pub fn assert_parks_clean(driver: fu_host::Driver) {
    let mut sys = driver.into_system();
    settle(&mut sys, SETTLE_BUDGET);
    assert!(
        sys.recv().is_none(),
        "driver left an unclaimed response in the host queue"
    );
}

/// Step `sys` until `n` responses have been received, returning them in
/// arrival order.
///
/// # Panics
/// After `budget` cycles without the `n`-th response, with a message
/// naming the budget and what actually arrived.
#[allow(dead_code)]
pub fn drain_responses(sys: &mut System, n: usize, budget: u64) -> Vec<DevMsg> {
    let mut out = Vec::new();
    for _ in 0..budget {
        if out.len() >= n {
            return out;
        }
        sys.step();
        while let Some(m) = sys.recv() {
            out.push(m);
        }
    }
    if out.len() >= n {
        return out;
    }
    panic!(
        "cycle budget of {budget} exhausted at cycle {}: expected {n} \
         responses, got {} so far: {out:?}",
        sys.cycle(),
        out.len(),
    );
}

/// Step `sys` until it reports fully idle (everything drained and, with a
/// reliable transport, acknowledged).
///
/// # Panics
/// After `budget` cycles without reaching idle.
#[allow(dead_code)]
pub fn settle(sys: &mut System, budget: u64) {
    sys.run_until(budget, |s| s.is_idle())
        .unwrap_or_else(|e| panic!("cycle budget of {budget} exhausted before idle: {e:?}"));
}

/// Step a [`fu_host::MultiHostSystem`] until it reports fully idle.
///
/// # Panics
/// After `budget` cycles without reaching idle.
#[allow(dead_code)]
pub fn settle_multihost(sys: &mut fu_host::MultiHostSystem, budget: u64) {
    for _ in 0..budget {
        if sys.is_idle() {
            return;
        }
        sys.step();
    }
    panic!("cycle budget of {budget} exhausted before the multi-host system went idle");
}

/// Feed `frames` into a bare [`fu_rtm::Coprocessor`] as flow control
/// allows and step until both the frames and the machine have drained.
/// Returns the cycle count at idle.
///
/// # Panics
/// After `budget` cycles without draining.
#[allow(dead_code)]
pub fn feed_frames_until_idle(
    coproc: &mut fu_rtm::Coprocessor,
    frames: impl IntoIterator<Item = u32>,
    budget: u64,
) -> u64 {
    let mut frames: std::collections::VecDeque<u32> = frames.into_iter().collect();
    for _ in 0..budget {
        while let Some(&f) = frames.front() {
            if coproc.push_frame(f) {
                frames.pop_front();
            } else {
                break;
            }
        }
        coproc.step();
        if frames.is_empty() && coproc.is_idle() {
            return coproc.cycle();
        }
    }
    panic!(
        "cycle budget of {budget} exhausted with {} frames unfed and the machine still busy",
        frames.len()
    );
}
