//! The serving layer's contract battery (experiment E17's correctness
//! side): the multi-tenant front-end over the farm must be
//!
//! 1. **deterministic** — the completion stream is a pure function of the
//!    submission sequence: threading (`run_parallel` vs `run_serial`),
//!    activity mode (gated / exhaustive / scheduled) and poll cadence
//!    must all be unobservable, and per-job *results* must not even
//!    depend on the shard count;
//! 2. **fair** — under saturation, each backlogged tenant's dispatched
//!    work share converges to its deficit-round-robin weight share;
//! 3. **shed-safe** — every submitted job is either completed exactly
//!    once, rejected in-band at admission, or cancelled by an explicit
//!    disconnect; nothing is lost or duplicated, even when a poisoned
//!    shard forces failover retries (cross-checked against the farm's
//!    `RecoveryStats`).

use std::collections::HashSet;

use fu_host::serve::workload::{client_job, open_loop, WorkloadSpec};
use fu_host::{
    Admission, Completion, Farm, FarmConfig, JobOutput, LinkModel, Placement, ServeConfig, Service,
    System, TenantSpec,
};
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::PoisonFu;
use fu_rtm::{ActivityMode, CoprocConfig};
use proptest::prelude::*;

fn standard_service(
    shards: usize,
    mode: ActivityMode,
    weights: &[u32],
    cfg: ServeConfig,
) -> Service {
    let farm = Farm::standard(
        FarmConfig {
            shards,
            seed: 0xE17,
            activity_mode: mode,
            placement: Placement::LeastLoaded,
            ..FarmConfig::default()
        },
        CoprocConfig::default(),
        LinkModel::pcie_like(),
    );
    let specs = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| TenantSpec::new(format!("t{i}"), w))
        .collect();
    Service::new(cfg, specs, farm).expect("valid service")
}

/// Feed a workload through a service, polling every `poll_every`
/// submissions (0 = only at the end), and return the full observable
/// outcome: completions in dispatch order plus the shed submission
/// indices.
fn feed(
    svc: &mut Service,
    arrivals: &[fu_host::serve::workload::Arrival],
    poll_every: usize,
) -> (Vec<Completion>, Vec<usize>) {
    let mut done = Vec::new();
    let mut shed = Vec::new();
    for (i, a) in arrivals.iter().enumerate() {
        match svc
            .submit(a.tenant, a.tick, a.job.clone())
            .expect("submit never errors on a healthy farm")
        {
            Admission::Admitted { .. } => {}
            Admission::Overloaded { .. } => shed.push(i),
        }
        if poll_every > 0 && i % poll_every == 0 {
            done.extend(svc.poll());
        }
    }
    done.extend(svc.drain().expect("drain"));
    (done, shed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// At a fixed shard count, the COMPLETE observable outcome —
    /// completion stream (seqs, timestamps, shards, cycles, payloads),
    /// shed decisions, final clock and tenant statistics — is identical
    /// across threading, all three activity modes and any poll cadence.
    #[test]
    fn outcome_is_identical_across_modes_threading_and_polling(
        seed: u64,
        shards in 1usize..4,
        poll_every in 0usize..6,
    ) {
        let arrivals = open_loop(&WorkloadSpec {
            clients: 30,
            tenants: 3,
            jobs_per_client: 2,
            mean_gap: 2_500,
            seed,
        });
        let cfg = ServeConfig {
            queue_depth: 6, // small: shedding is part of the outcome
            quantum: 8,
            round_jobs: 16,
            parallel: false,
        };
        let run = |mode: ActivityMode, parallel: bool, poll: usize| {
            let mut svc =
                standard_service(shards, mode, &[1, 2, 4], ServeConfig { parallel, ..cfg });
            let out = feed(&mut svc, &arrivals, poll);
            (out, svc.clock(), svc.stats().clone())
        };
        let reference = run(ActivityMode::Gated, false, 0);
        prop_assert_eq!(
            &reference, &run(ActivityMode::Gated, true, poll_every),
            "threading leaked into the serving outcome"
        );
        prop_assert_eq!(
            &reference, &run(ActivityMode::Exhaustive, false, poll_every),
            "exhaustive mode diverged"
        );
        prop_assert_eq!(
            &reference, &run(ActivityMode::Scheduled, false, poll_every),
            "scheduled mode diverged"
        );
    }

    /// Shard count changes timing (clock, completion times) but never
    /// *results*: with shed-free admission, every sequence number
    /// completes with the same payload on 1, 2 or 3 shards.
    #[test]
    fn per_job_results_are_invariant_across_shard_counts(seed: u64) {
        let arrivals = open_loop(&WorkloadSpec {
            clients: 24,
            tenants: 2,
            jobs_per_client: 2,
            mean_gap: 1_500,
            seed,
        });
        let outputs = |shards: usize| {
            let mut svc = standard_service(
                shards,
                ActivityMode::Gated,
                &[1, 2],
                ServeConfig {
                    queue_depth: usize::MAX, // shed-free: admission cannot depend on timing
                    ..ServeConfig::default()
                },
            );
            let (done, shed) = feed(&mut svc, &arrivals, 3);
            prop_assert!(shed.is_empty());
            let mut by_seq: Vec<_> = done
                .into_iter()
                .map(|c| (c.seq, c.tenant, c.output))
                .collect();
            by_seq.sort_by_key(|(seq, ..)| *seq);
            by_seq
        };
        let one = outputs(1);
        prop_assert_eq!(&one, &outputs(2), "2-shard results diverged from 1-shard");
        prop_assert_eq!(&one, &outputs(3), "3-shard results diverged from 1-shard");
    }

    /// Saturated tenants receive dispatched-work shares that track their
    /// DRR weights, whatever the weights are.
    #[test]
    fn drr_shares_converge_to_weights_under_saturation(
        w in proptest::collection::vec(1u32..5, 3),
        shards in 1usize..3,
    ) {
        let mut svc = standard_service(
            shards,
            ActivityMode::Gated,
            &w,
            ServeConfig {
                queue_depth: 700,
                quantum: 4,
                round_jobs: 16,
                parallel: false,
            },
        );
        // Everyone fully backlogged at tick 0 with equal-cost jobs.
        for i in 0..220u32 {
            for t in 0..w.len() as u32 {
                let (job, _) = client_job(i, t, (i % 64) as u16);
                svc.submit(t, 0, job).expect("submit");
            }
        }
        while svc.stats().dispatched < 12 * 16 {
            let clock = svc.clock();
            svc.advance_to(clock + 1).expect("one round");
        }
        prop_assert!(svc.queued() > 0, "backlog drained — not a saturation test");
        let total_w: f64 = w.iter().map(|&x| f64::from(x)).sum();
        let dispatched: u64 = (0..w.len() as u32)
            .map(|t| svc.stats().tenant(t).map_or(0, |c| c.work_cost))
            .sum();
        for (t, &wt) in w.iter().enumerate() {
            let got = svc.stats().tenant(t as u32).map_or(0, |c| c.work_cost);
            let share = got as f64 / dispatched as f64;
            let ideal = f64::from(wt) / total_w;
            prop_assert!(
                (share - ideal).abs() < 0.10,
                "tenant {} (weight {}): share {:.3} vs ideal {:.3}",
                t, wt, share, ideal
            );
        }
    }

    /// Conservation under arbitrary load, shedding and mid-session
    /// disconnects: submitted = admitted + shed, every admitted job is
    /// completed exactly once or cancelled, and sequence numbers are
    /// unique.
    #[test]
    fn every_job_completes_exactly_once_or_is_rejected_in_band(
        seed: u64,
        queue_depth in 2usize..8,
        disconnect_at in 10usize..60,
    ) {
        let arrivals = open_loop(&WorkloadSpec {
            clients: 40,
            tenants: 4,
            jobs_per_client: 2,
            mean_gap: 800, // hot: force queue-full rejections
            seed,
        });
        let mut svc = standard_service(
            2,
            ActivityMode::Gated,
            &[1, 1, 2, 4],
            ServeConfig {
                queue_depth,
                ..ServeConfig::default()
            },
        );
        let mut admitted: HashSet<u64> = HashSet::new();
        let mut shed = 0u64;
        let mut done: Vec<Completion> = Vec::new();
        for (i, a) in arrivals.iter().enumerate() {
            match svc.submit(a.tenant, a.tick, a.job.clone()).expect("submit") {
                Admission::Admitted { seq } => {
                    prop_assert!(admitted.insert(seq), "seq {} handed out twice", seq);
                }
                Admission::Overloaded { tenant, .. } => {
                    prop_assert_eq!(tenant, a.tenant);
                    shed += 1;
                }
            }
            if i == disconnect_at {
                svc.disconnect(a.tenant); // a client vanishes mid-session
            }
            done.extend(svc.poll());
        }
        done.extend(svc.drain().expect("drain"));
        prop_assert!(svc.is_idle());
        prop_assert_eq!(svc.pending_completions(), 0);

        let seqs: HashSet<u64> = done.iter().map(|c| c.seq).collect();
        prop_assert_eq!(seqs.len(), done.len(), "a completion was duplicated");
        prop_assert!(seqs.is_subset(&admitted), "completed a job never admitted");

        let t = svc.stats().totals();
        prop_assert_eq!(t.submitted, arrivals.len() as u64);
        prop_assert_eq!(t.shed, shed);
        prop_assert_eq!(t.admitted, admitted.len() as u64);
        prop_assert_eq!(t.completed + t.failed, done.len() as u64);
        prop_assert_eq!(t.admitted, t.completed + t.failed + t.cancelled);
        prop_assert_eq!(t.in_queue(), 0);
        prop_assert_eq!(t.failed, 0, "healthy farm must not fail jobs");
        prop_assert_eq!(
            (admitted.len() - seqs.len()) as u64,
            t.cancelled,
            "every admitted-but-incomplete job must be an accounted cancellation"
        );
    }
}

/// Shed-safety under *failures*: one poisoned shard panics whenever a job
/// carries the trigger operand; with failover retries armed, every such
/// job must still complete exactly once — on another shard — and the
/// service's accumulated `RecoveryStats` must record exactly the retries
/// the farm performed.
#[test]
fn poisoned_shard_jobs_complete_via_failover_and_recovery_stats_agree() {
    let farm = Farm::new(
        FarmConfig {
            shards: 3,
            seed: 0xE17,
            max_job_retries: 3,
            // Round-robin so the poison jobs land on every shard in turn,
            // including the poisoned one, regardless of cost.
            placement: Placement::RoundRobin,
            ..FarmConfig::default()
        },
        |ctx| {
            let trigger = (ctx.index == 1).then_some(0xDEAD);
            System::new(
                CoprocConfig::default(),
                vec![Box::new(PoisonFu::new("poison", 1, 1, trigger))],
                LinkModel::ideal(),
            )
        },
    );
    let mut svc = Service::new(
        ServeConfig {
            queue_depth: 64,
            parallel: false,
            ..ServeConfig::default()
        },
        vec![TenantSpec::new("a", 1), TenantSpec::new("b", 2)],
        farm,
    )
    .expect("valid service");

    let poison_job = |tag: u16| {
        fu_host::Job::Requests(vec![
            HostMsg::WriteReg {
                reg: 1,
                value: Word::from_u64(0xDEAD, 32),
            },
            HostMsg::Instr(InstrWord::user(UserInstr {
                func: 1,
                variety: 0,
                dst_flag: 1,
                dst_reg: 3,
                aux_reg: 0,
                src1: 1,
                src2: 1,
                src3: 0,
            })),
            HostMsg::ReadReg { reg: 3, tag },
        ])
    };
    let n = 12u64;
    for i in 0..n {
        svc.submit((i % 2) as u32, 0, poison_job(i as u16))
            .expect("submit");
    }
    // The poison panics are the point; keep backtraces out of test logs
    // (the farm catches and converts every one).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let done = svc.drain();
    std::panic::set_hook(hook);
    let done = done.expect("drain");

    assert_eq!(done.len(), n as usize);
    let seqs: HashSet<u64> = done.iter().map(|c| c.seq).collect();
    assert_eq!(seqs.len(), done.len(), "failover duplicated a completion");
    for c in &done {
        match &c.output {
            Ok(JobOutput::Msgs(msgs)) => {
                assert!(
                    matches!(msgs[..], [DevMsg::Data { .. }]),
                    "seq {}: unexpected responses {msgs:?}",
                    c.seq
                );
            }
            other => panic!("seq {} not recovered by failover: {other:?}", c.seq),
        }
        assert_ne!(c.shard, 1, "a completion came from the poisoned shard");
    }
    let t = svc.stats().totals();
    assert_eq!((t.completed, t.failed), (n, 0));
    let rec = &svc.sim_stats().recovery;
    // Round-robin over 3 shards puts a third of the jobs on the poisoned
    // one; each needs exactly one retry to land on a healthy shard.
    assert_eq!(rec.jobs_failed_over, n / 3, "failover count mismatch");
    assert_eq!(rec.job_retries, n / 3, "one retry per poisoned placement");
}

/// The completion stream carries enough to audit latency: completion
/// times are round-start plus shard-local prefix sums, so they are
/// non-decreasing per shard within a round and always at least
/// `submitted_at + cycles`.
#[test]
fn completion_timestamps_are_causally_consistent() {
    let arrivals = open_loop(&WorkloadSpec {
        clients: 50,
        tenants: 3,
        jobs_per_client: 2,
        mean_gap: 2_000,
        seed: 0xCAFE,
    });
    let mut svc = standard_service(2, ActivityMode::Gated, &[1, 2, 4], ServeConfig::default());
    let (done, _) = feed(&mut svc, &arrivals, 1);
    assert!(!done.is_empty());
    for c in &done {
        assert!(c.cycles > 0, "seq {}: zero-cycle completion", c.seq);
        assert!(
            c.completed_at >= c.submitted_at + c.cycles,
            "seq {}: completed before its own execution finished",
            c.seq
        );
    }
    // Latency histogram totals must cover every completion.
    let t = svc.stats().totals();
    assert_eq!(t.latency.count(), done.len() as u64);
}
