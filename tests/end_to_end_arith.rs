//! End-to-end randomized differential test: full system (host → link →
//! RTM → arithmetic/logic/shift units → back) against an independent
//! golden register-file model.
//!
//! The golden model interprets each instruction directly with `u64`
//! arithmetic, never touching the simulator's `Word`/variety machinery,
//! so agreement really does check the whole stack: framing, decode,
//! interlocks, dispatch, kernels, write arbitration and response
//! ordering.

mod util;

use fu_host::{Driver, LinkModel, System};
use fu_isa::variety::{ArithOp, LogicOp};
use fu_isa::Flags;
use fu_rtm::CoprocConfig;
use fu_units::standard_units;
use rtl_sim::StallFuzzer;

/// Independent interpretation of the instruction stream.
#[derive(Debug, Clone)]
struct Golden {
    regs: Vec<u32>,
    flags: Vec<(bool, bool, bool, bool)>, // C, Z, N, V
}

impl Golden {
    fn new(n_regs: usize, n_flags: usize) -> Golden {
        Golden {
            regs: vec![0; n_regs],
            flags: vec![(false, false, false, false); n_flags],
        }
    }

    fn set_flags(&mut self, f: usize, full: u64, signed_ovf: bool) {
        let r = full as u32;
        self.flags[f] = (full >> 32 != 0, r == 0, r >> 31 == 1, signed_ovf);
    }

    fn arith(&mut self, op: ArithOp, d: usize, s1: usize, s2: usize, fd: usize, fs: usize) {
        let a = self.regs[s1] as u64;
        let b = self.regs[s2] as u64;
        let carry_in = self.flags[fs].0;
        let (x, y, ci) = match op {
            ArithOp::Add => (a, b, false),
            ArithOp::Adc => (a, b, carry_in),
            ArithOp::Sub | ArithOp::Cmp => (a, !b & 0xffff_ffff, true),
            ArithOp::Sbb | ArithOp::Cmpb => (a, !b & 0xffff_ffff, carry_in),
            ArithOp::Inc => (a, 0, true),
            ArithOp::Dec => (a, 0xffff_ffff, false),
            ArithOp::Neg => (0, !b & 0xffff_ffff, true),
        };
        let full = x + y + ci as u64;
        let res = full as u32;
        let sa = (x as u32) >> 31 == 1;
        let sb = (y as u32) >> 31 == 1;
        let sr = res >> 31 == 1;
        self.set_flags(fd, full, sa == sb && sa != sr);
        if !matches!(op, ArithOp::Cmp | ArithOp::Cmpb) {
            self.regs[d] = res;
        }
    }

    fn logic(&mut self, op: LogicOp, d: usize, s1: usize, s2: usize, fd: usize) {
        let a = self.regs[s1];
        let b = self.regs[s2];
        let r = match op {
            LogicOp::And | LogicOp::Test => a & b,
            LogicOp::Or => a | b,
            LogicOp::Xor => a ^ b,
            LogicOp::Nand => !(a & b),
            LogicOp::Nor => !(a | b),
            LogicOp::Xnor => !(a ^ b),
            LogicOp::Not => !a,
            LogicOp::Andn => a & !b,
            LogicOp::Copy => a,
        };
        self.flags[fd] = (false, r == 0, r >> 31 == 1, false);
        if op != LogicOp::Test {
            self.regs[d] = r;
        }
    }
}

fn random_system(link: LinkModel) -> Driver {
    let cfg = CoprocConfig {
        data_regs: 16,
        flag_regs: 4,
        ..CoprocConfig::default()
    };
    Driver::new(
        System::new(cfg, standard_units(32), link).unwrap(),
        util::DRIVER_TIMEOUT,
    )
}

fn run_differential(seed: u64, n_instrs: usize, link: LinkModel) {
    let mut rng = StallFuzzer::new(seed, 0.0);
    let mut d = random_system(link);
    let mut g = Golden::new(16, 4);

    // Seed registers with random values.
    for r in 0..16u8 {
        let v = rng.next_u64() as u32;
        d.write_reg(r, v as u64);
        g.regs[r as usize] = v;
    }

    for _ in 0..n_instrs {
        let d1 = (rng.below(16)) as u8;
        let s1 = (rng.below(16)) as u8;
        let s2 = (rng.below(16)) as u8;
        let fd = (rng.below(4)) as u8;
        let fs = (rng.below(4)) as u8;
        match rng.below(3) {
            0 => {
                let op = ArithOp::ALL[rng.below(9) as usize];
                let line = match op {
                    ArithOp::Inc | ArithOp::Dec => {
                        format!("{} r{d1}, r{s1}, f{fd}", op.mnemonic())
                    }
                    ArithOp::Neg => format!("{} r{d1}, r{s2}, f{fd}", op.mnemonic()),
                    ArithOp::Cmp | ArithOp::Cmpb => {
                        format!("{} r{s1}, r{s2}, f{fd}, f{fs}", op.mnemonic())
                    }
                    _ => format!("{} r{d1}, r{s1}, r{s2}, f{fd}, f{fs}", op.mnemonic()),
                };
                d.exec_asm(&line).unwrap();
                g.arith(
                    op,
                    d1 as usize,
                    s1 as usize,
                    s2 as usize,
                    fd as usize,
                    fs as usize,
                );
            }
            1 => {
                let op = LogicOp::ALL[rng.below(10) as usize];
                let line = match op {
                    LogicOp::Not | LogicOp::Copy => {
                        format!("{} r{d1}, r{s1}, f{fd}", op.mnemonic())
                    }
                    LogicOp::Test => format!("TEST r{s1}, r{s2}, f{fd}"),
                    _ => format!("{} r{d1}, r{s1}, r{s2}, f{fd}", op.mnemonic()),
                };
                d.exec_asm(&line).unwrap();
                g.logic(op, d1 as usize, s1 as usize, s2 as usize, fd as usize);
            }
            _ => {
                // Management copy, exercising the in-pipeline path.
                d.exec_asm(&format!("COPY r{d1}, r{s1}")).unwrap();
                g.regs[d1 as usize] = g.regs[s1 as usize];
            }
        }
    }

    d.sync().unwrap();
    for r in 0..16u8 {
        let got = d.read_reg(r).unwrap().as_u64() as u32;
        assert_eq!(
            got, g.regs[r as usize],
            "register r{r} diverged (seed {seed})"
        );
    }
    for f in 0..4u8 {
        let got = d.read_flags(f).unwrap();
        let (c, z, n, v) = g.flags[f as usize];
        assert_eq!(
            got & Flags(0b1111),
            Flags::from_parts(c, z, n, v),
            "flag register f{f} diverged (seed {seed})"
        );
    }
    util::assert_parks_clean(d);
}

#[test]
fn differential_against_golden_model_ideal_link() {
    for seed in 0..8 {
        run_differential(seed, 300, LinkModel::ideal());
    }
}

#[test]
fn differential_against_golden_model_slow_link() {
    // The slow link changes timing drastically but must not change
    // results.
    run_differential(99, 60, LinkModel::prototyping());
}

#[test]
fn differential_against_golden_model_pcie() {
    for seed in 200..203 {
        run_differential(seed, 200, LinkModel::pcie_like());
    }
}

#[test]
fn long_dependent_chain() {
    // r1 <- 1; then 100 dependent INCs; forces a full interlock chain.
    let mut d = random_system(LinkModel::tightly_coupled());
    d.write_reg(1, 1);
    for _ in 0..100 {
        d.exec_asm("INC r1, r1, f0").unwrap();
    }
    assert_eq!(d.read_reg(1).unwrap().as_u64(), 101);
    let stats = d.system().coproc().stats();
    assert_eq!(stats.dispatch.user_dispatched, 100);
    // Over a frame-serial link the 3-frame instruction delivery hides
    // most of the dependency latency; at least one stall must still be
    // observable (the deeper CPI measurements drive the coprocessor's
    // frame port directly — see bench exp_cpi).
    assert!(
        stats.dispatch.stall_lock >= 1,
        "a dependent chain must stall on locks at least once"
    );
}

#[test]
fn independent_stream_overlaps() {
    // Independent instructions on distinct registers/flags should run
    // much closer to 1 CPI than the dependent chain.
    let mut d = random_system(LinkModel::tightly_coupled());
    for r in 0..8u8 {
        d.write_reg(r, r as u64);
    }
    let start = d.cycles();
    for i in 0..96u32 {
        let r = (i % 4) * 2;
        let f = i % 4;
        d.exec_asm(&format!("ADD r{}, r{}, r{}, f{}", r + 8 - 7, r, r, f))
            .unwrap();
    }
    d.sync().unwrap();
    let cycles = d.cycles() - start;
    // 96 instructions, 4-way rotation over one 2-cycle arithmetic unit:
    // bounded by the unit's occupancy, not by hazards.
    assert!(
        cycles < 96 * 6,
        "independent stream took {cycles} cycles for 96 instructions"
    );
    util::assert_parks_clean(d);
}

#[test]
fn pipelined_batch_issue_matches_one_at_a_time() {
    // The same program must leave the machine in the same state whether
    // each instruction waits for a sync (exec_asm) or the whole batch is
    // streamed into the link back-to-back (submit_program) — pipelining
    // changes timing only.
    let program = "ADD r3, r1, r2, f1\n\
                   SUB r4, r3, r1, f2\n\
                   XOR r5, r4, r2, f3\n\
                   INC r6, r5, f0\n\
                   OR r7, r6, r3, f1";

    let mut serial = random_system(LinkModel::pcie_like());
    serial.write_reg(1, 40);
    serial.write_reg(2, 2);
    for line in program.lines() {
        serial.exec_asm(line.trim()).unwrap();
    }

    let mut batched = random_system(LinkModel::pcie_like());
    batched.write_reg(1, 40);
    batched.write_reg(2, 2);
    assert_eq!(batched.submit_program(program).unwrap(), 5);
    batched.sync().unwrap();

    for r in 0..16u8 {
        assert_eq!(
            serial.read_reg(r).unwrap(),
            batched.read_reg(r).unwrap(),
            "register r{r} diverged between serial and batched issue"
        );
    }
    util::assert_parks_clean(serial);
    util::assert_parks_clean(batched);
}
