//! Acceptance properties for the reliability work: under arbitrary seeds
//! and fault rates up to 20% per class, the reliable transport must hide
//! every injected fault from the application, and the dispatch watchdog
//! must convert a hung functional unit into an in-band error while the
//! rest of the machine keeps executing.

mod util;

use bench::faults::fault_batch;
use fu_host::{FaultModel, LinkModel, System};
use fu_isa::msg::ErrorCode;
use fu_isa::transport::TransportConfig;
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::{LatencyFu, StuckFu};
use fu_rtm::{ActivityMode, CoprocConfig, FunctionalUnit};
use proptest::prelude::*;

fn pick_link(index: usize) -> LinkModel {
    match index {
        0 => LinkModel::tightly_coupled(),
        _ => LinkModel::pcie_like(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The reliable transport may cost cycles, never answers: for any
    /// seed and any fault rate up to 200 permille per class, the faulty
    /// run's response stream is bit-identical to the fault-free one.
    #[test]
    fn faulty_stream_is_bit_identical(
        seed in any::<u64>(),
        permille in 1u32..=200,
        link_index in 0usize..2,
        n in 1usize..8,
    ) {
        let clean = fault_batch(pick_link(link_index), 0, seed, n);
        let faulty = fault_batch(pick_link(link_index), permille, seed, n);
        prop_assert_eq!(
            &clean.responses, &faulty.responses,
            "stream diverged at {} permille, seed {:#x}", permille, seed
        );
        prop_assert!(!faulty.stats.gave_up);
    }
}

fn stuck_instr(dst: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: 9,
        variety: 0,
        dst_flag: 3,
        dst_reg: dst,
        aux_reg: 0,
        src1: 1,
        src2: 1,
        src3: 0,
    }))
}

fn dependent_add() -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: 1,
        variety: 0,
        dst_flag: 1,
        dst_reg: 2,
        aux_reg: 0,
        src1: 2,
        src2: 1,
        src3: 0,
    }))
}

/// One stuck unit, one healthy unit, a lossy reliable link: run the
/// watchdog workload to completion and return the full response stream
/// (quarantine phase included).
fn watchdog_run(seed: u64, permille: u32, max_busy: u64, mode: ActivityMode) -> Vec<DevMsg> {
    let link = LinkModel::tightly_coupled();
    let tcfg = TransportConfig::for_link(link.latency_cycles, link.cycles_per_frame);
    let cfg = CoprocConfig {
        max_busy_cycles: Some(max_busy),
        ..CoprocConfig::default()
    };
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(StuckFu::new("hang", 9)),
        Box::new(LatencyFu::new("add", 1, 2)),
    ];
    let faults = (permille > 0).then(|| FaultModel::uniform(seed, permille));
    let mut sys = System::new_reliable(cfg, units, link, tcfg, faults).expect("valid config");
    sys.set_activity_mode(mode);
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    });
    sys.send(&HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(0, 32),
    });
    sys.send(&stuck_instr(5));
    for _ in 0..4 {
        sys.send(&dependent_add());
    }
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 1 });
    // Register 5 is locked by the hung dispatch; this read can only
    // answer once the watchdog releases the lock.
    sys.send(&HostMsg::ReadReg { reg: 5, tag: 2 });
    sys.send(&HostMsg::Sync { tag: 3 });
    util::settle(&mut sys, 200_000_000);
    let mut out: Vec<DevMsg> = std::iter::from_fn(|| sys.recv()).collect();
    // The quarantined unit must now fail fast, and the machine must still
    // serve the healthy path.
    sys.send(&stuck_instr(6));
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 4 });
    sys.send(&HostMsg::Sync { tag: 5 });
    util::settle(&mut sys, 200_000_000);
    out.extend(std::iter::from_fn(|| sys.recv()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A hung unit degrades gracefully under any fault rate: the workload
    /// completes, the timeout is reported in band, healthy units keep
    /// executing, and both activity modes agree bit for bit.
    #[test]
    fn hung_unit_degrades_gracefully(
        seed in any::<u64>(),
        permille in 0u32..=200,
        max_busy in 40u64..200,
    ) {
        let gated = watchdog_run(seed, permille, max_busy, ActivityMode::Gated);
        let exhaustive = watchdog_run(seed, permille, max_busy, ActivityMode::Exhaustive);
        prop_assert_eq!(&gated, &exhaustive, "activity modes diverged");

        let out = gated;
        prop_assert!(
            out.contains(&DevMsg::Error { code: ErrorCode::FuTimeout, info: 9 }),
            "no in-band timeout in {:?}", out
        );
        // Healthy unit finished its adds despite the hang.
        prop_assert!(out.contains(&DevMsg::Data { tag: 1, value: Word::from_u64(12, 32) }));
        // The hung dispatch's register lock was released.
        prop_assert!(out.contains(&DevMsg::Data { tag: 2, value: Word::from_u64(0, 32) }));
        prop_assert!(out.contains(&DevMsg::SyncAck { tag: 3 }));
        // Phase two: dispatching to the quarantined unit fails fast while
        // the healthy unit still answers.
        prop_assert!(
            out.contains(&DevMsg::Error { code: ErrorCode::FuQuarantined, info: 9 }),
            "no fail-fast error in {:?}", out
        );
        prop_assert!(out.contains(&DevMsg::Data { tag: 4, value: Word::from_u64(12, 32) }));
        prop_assert_eq!(out.last(), Some(&DevMsg::SyncAck { tag: 5 }));
    }
}
