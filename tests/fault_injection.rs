//! Acceptance properties for the reliability work: under arbitrary seeds
//! and fault rates up to 20% per class, the reliable transport must hide
//! every injected fault from the application, and the dispatch watchdog
//! must convert a hung functional unit into an in-band error while the
//! rest of the machine keeps executing.

mod util;

use bench::faults::fault_batch;
use fu_host::{FaultModel, LinkModel, System};
use fu_isa::msg::ErrorCode;
use fu_isa::transport::TransportConfig;
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::{LatencyFu, StuckFu};
use fu_rtm::{ActivityMode, CoprocConfig, FunctionalUnit};
use proptest::prelude::*;

fn pick_link(index: usize) -> LinkModel {
    match index {
        0 => LinkModel::tightly_coupled(),
        _ => LinkModel::pcie_like(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The reliable transport may cost cycles, never answers: for any
    /// seed and any fault rate up to 200 permille per class, the faulty
    /// run's response stream is bit-identical to the fault-free one.
    #[test]
    fn faulty_stream_is_bit_identical(
        seed in any::<u64>(),
        permille in 1u32..=200,
        link_index in 0usize..2,
        n in 1usize..8,
    ) {
        let clean = fault_batch(pick_link(link_index), 0, seed, n);
        let faulty = fault_batch(pick_link(link_index), permille, seed, n);
        prop_assert_eq!(
            &clean.responses, &faulty.responses,
            "stream diverged at {} permille, seed {:#x}", permille, seed
        );
        prop_assert!(!faulty.stats.gave_up);
    }
}

fn stuck_instr(dst: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: 9,
        variety: 0,
        dst_flag: 3,
        dst_reg: dst,
        aux_reg: 0,
        src1: 1,
        src2: 1,
        src3: 0,
    }))
}

fn dependent_add() -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: 1,
        variety: 0,
        dst_flag: 1,
        dst_reg: 2,
        aux_reg: 0,
        src1: 2,
        src2: 1,
        src3: 0,
    }))
}

/// One stuck unit, one healthy unit, a lossy reliable link: run the
/// watchdog workload to completion and return the full response stream
/// (quarantine phase included).
fn watchdog_run(seed: u64, permille: u32, max_busy: u64, mode: ActivityMode) -> Vec<DevMsg> {
    let link = LinkModel::tightly_coupled();
    let tcfg = TransportConfig::for_link(link.latency_cycles, link.cycles_per_frame);
    let cfg = CoprocConfig {
        max_busy_cycles: Some(max_busy),
        ..CoprocConfig::default()
    };
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(StuckFu::new("hang", 9)),
        Box::new(LatencyFu::new("add", 1, 2)),
    ];
    let faults = (permille > 0).then(|| FaultModel::uniform(seed, permille));
    let mut sys = System::new_reliable(cfg, units, link, tcfg, faults).expect("valid config");
    sys.set_activity_mode(mode);
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    });
    sys.send(&HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(0, 32),
    });
    sys.send(&stuck_instr(5));
    for _ in 0..4 {
        sys.send(&dependent_add());
    }
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 1 });
    // Register 5 is locked by the hung dispatch; this read can only
    // answer once the watchdog releases the lock.
    sys.send(&HostMsg::ReadReg { reg: 5, tag: 2 });
    sys.send(&HostMsg::Sync { tag: 3 });
    util::settle(&mut sys, 200_000_000);
    let mut out: Vec<DevMsg> = std::iter::from_fn(|| sys.recv()).collect();
    // The quarantined unit must now fail fast, and the machine must still
    // serve the healthy path.
    sys.send(&stuck_instr(6));
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 4 });
    sys.send(&HostMsg::Sync { tag: 5 });
    util::settle(&mut sys, 200_000_000);
    out.extend(std::iter::from_fn(|| sys.recv()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A hung unit degrades gracefully under any fault rate: the workload
    /// completes, the timeout is reported in band, healthy units keep
    /// executing, and both activity modes agree bit for bit.
    #[test]
    fn hung_unit_degrades_gracefully(
        seed in any::<u64>(),
        permille in 0u32..=200,
        max_busy in 40u64..200,
    ) {
        let gated = watchdog_run(seed, permille, max_busy, ActivityMode::Gated);
        let exhaustive = watchdog_run(seed, permille, max_busy, ActivityMode::Exhaustive);
        prop_assert_eq!(&gated, &exhaustive, "activity modes diverged");

        let out = gated;
        prop_assert!(
            out.contains(&DevMsg::Error { code: ErrorCode::FuTimeout, info: 9 }),
            "no in-band timeout in {:?}", out
        );
        // Healthy unit finished its adds despite the hang.
        prop_assert!(out.contains(&DevMsg::Data { tag: 1, value: Word::from_u64(12, 32) }));
        // The hung dispatch's register lock was released.
        prop_assert!(out.contains(&DevMsg::Data { tag: 2, value: Word::from_u64(0, 32) }));
        prop_assert!(out.contains(&DevMsg::SyncAck { tag: 3 }));
        // Phase two: dispatching to the quarantined unit fails fast while
        // the healthy unit still answers.
        prop_assert!(
            out.contains(&DevMsg::Error { code: ErrorCode::FuQuarantined, info: 9 }),
            "no fail-fast error in {:?}", out
        );
        prop_assert!(out.contains(&DevMsg::Data { tag: 4, value: Word::from_u64(12, 32) }));
        prop_assert_eq!(out.last(), Some(&DevMsg::SyncAck { tag: 5 }));
    }
}

/// As [`watchdog_run`] but in `Scheduled` mode and paced by the drain
/// helpers instead of one settle: each phase pulls its exact response
/// count with [`util::drain_responses`] while faults are still being
/// injected, then the system must park fully idle with nothing left in
/// the host queue.
fn watchdog_drain_scheduled(seed: u64, permille: u32, max_busy: u64) -> Vec<DevMsg> {
    let link = LinkModel::tightly_coupled();
    let tcfg = TransportConfig::for_link(link.latency_cycles, link.cycles_per_frame);
    let cfg = CoprocConfig {
        max_busy_cycles: Some(max_busy),
        ..CoprocConfig::default()
    };
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(StuckFu::new("hang", 9)),
        Box::new(LatencyFu::new("add", 1, 2)),
    ];
    let faults = (permille > 0).then(|| FaultModel::uniform(seed, permille));
    let mut sys = System::new_reliable(cfg, units, link, tcfg, faults).expect("valid config");
    sys.set_activity_mode(ActivityMode::Scheduled);
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    });
    sys.send(&HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(0, 32),
    });
    sys.send(&stuck_instr(5));
    for _ in 0..4 {
        sys.send(&dependent_add());
    }
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 1 });
    sys.send(&HostMsg::ReadReg { reg: 5, tag: 2 });
    sys.send(&HostMsg::Sync { tag: 3 });
    // Phase 1 answers with exactly four messages: the in-band timeout,
    // both reads, and the sync ack.
    let mut out = util::drain_responses(&mut sys, 4, util::STREAM_BUDGET);
    sys.send(&stuck_instr(6));
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 4 });
    sys.send(&HostMsg::Sync { tag: 5 });
    // Phase 2: the quarantine fail-fast, the healthy read, the ack.
    out.extend(util::drain_responses(&mut sys, 3, util::STREAM_BUDGET));
    // With the stream fully claimed the system must park: idle within
    // the settle budget (acks included) and no dangling response.
    util::settle(&mut sys, util::STREAM_BUDGET);
    assert!(sys.is_idle(), "settle returned before idle");
    assert!(
        sys.recv().is_none(),
        "drained system still had a queued response"
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The event-wheel mode under the combined stress — link faults plus
    /// a hung unit driven through watchdog quarantine — agrees bit for
    /// bit with gated stepping, and `is_idle`/the drain helpers behave:
    /// each phase's responses can be pulled exactly while faults are
    /// live, after which the system parks clean.
    #[test]
    fn scheduled_mode_quarantine_drains_and_parks_idle(
        seed in any::<u64>(),
        permille in 0u32..=200,
        max_busy in 40u64..200,
    ) {
        let gated = watchdog_run(seed, permille, max_busy, ActivityMode::Gated);
        let scheduled = watchdog_drain_scheduled(seed, permille, max_busy);
        prop_assert_eq!(&gated, &scheduled, "scheduled mode diverged under faults");
    }
}

/// Run the arithmetic round trip on a reliable, traced system with the
/// given fault model; return the response stream and the system for
/// trace/stats inspection.
fn traced_faulty_run(faults: Option<FaultModel>, n: usize) -> (Vec<DevMsg>, System) {
    let link = LinkModel::pcie_like();
    let tcfg = TransportConfig::for_link(link.latency_cycles, link.cycles_per_frame);
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 2))];
    let mut sys =
        System::new_reliable(CoprocConfig::default(), units, link, tcfg, faults).expect("config");
    sys.set_trace_depth(1 << 16);
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    });
    sys.send(&HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(0, 32),
    });
    for _ in 0..n {
        sys.send(&dependent_add());
    }
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 1 });
    sys.send(&HostMsg::Sync { tag: 2 });
    util::settle(&mut sys, 200_000_000);
    let out: Vec<DevMsg> = std::iter::from_fn(|| sys.recv()).collect();
    (out, sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All three fault classes at once: go-back-N still hides every fault
    /// from the application, and the link trace's retransmission events
    /// account for exactly the retransmissions the transport counted —
    /// Σ `LinkRetransmit.segments` == `link_stats().retransmits`.
    #[test]
    fn combined_faults_recover_and_trace_accounts_retransmits(
        seed in any::<u64>(),
        drop in 0u32..=120,
        corrupt in 0u32..=120,
        duplicate in 0u32..=120,
        n in 1usize..6,
    ) {
        let faults = FaultModel {
            seed,
            drop_permille: drop,
            corrupt_permille: corrupt,
            duplicate_permille: duplicate,
            burst_permille: 0,
            burst_len: 1,
        };
        let (clean_out, _clean_sys) = traced_faulty_run(None, n);
        let (faulty_out, faulty_sys) = traced_faulty_run(Some(faults), n);
        prop_assert_eq!(
            &clean_out, &faulty_out,
            "stream diverged under drop={} corrupt={} dup={} seed={:#x}",
            drop, corrupt, duplicate, seed
        );
        prop_assert!(faulty_out.contains(&DevMsg::Data {
            tag: 1,
            value: Word::from_u64(3 * n as u64, 32),
        }));

        let stats = faulty_sys.link_stats();
        prop_assert!(!stats.gave_up);
        let traced_retx: u64 = faulty_sys
            .link_trace()
            .events()
            .map(|e| match e.kind {
                rtl_sim::TraceEventKind::LinkRetransmit { segments } => u64::from(segments),
                _ => 0,
            })
            .sum();
        prop_assert_eq!(
            faulty_sys.link_trace().dropped(), 0,
            "link trace ring overflowed; the accounting below would be partial"
        );
        prop_assert_eq!(
            traced_retx, stats.retransmits,
            "trace accounting diverged from transport counters"
        );
        if drop > 0 || corrupt > 0 {
            // With faults injected on both directions the transport almost
            // surely retransmitted; if it did, the trace must show it.
            prop_assert_eq!(traced_retx > 0, stats.retransmits > 0);
        }
    }
}
