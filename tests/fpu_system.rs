//! Floating-point unit through the full machine: the paper's §I example
//! ("provide floating point operations in hardware") as a working
//! coprocessor workload — an f32 dot product chained through the
//! register file on the 4-stage pipelined FPU.

use fu_isa::{HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};
use fu_units::fpu::{self, ops, FpuKernel};
use fu_units::MinimalFu;

fn fpu_instr_f(variety: u8, dst: u8, s1: u8, s2: u8, flag: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: fpu::FPU_FUNC_CODE,
        variety,
        dst_flag: flag,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    }))
}

fn fpu_instr(variety: u8, dst: u8, s1: u8, s2: u8) -> HostMsg {
    fpu_instr_f(variety, dst, s1, s2, 1)
}

fn machine(unit: Box<dyn FunctionalUnit>) -> Coprocessor {
    Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            rx_fifo_depth: 64,
            ..CoprocConfig::default()
        },
        vec![unit],
    )
    .unwrap()
}

fn flush(v: f32) -> f32 {
    if v.is_subnormal() {
        0.0f32.copysign(v)
    } else {
        v
    }
}

#[test]
fn dot_product_matches_host_fpu() {
    let xs = [1.5f32, -2.25, 3.125, 0.5, -0.875, 10.0, 1e-3, 7.75];
    let ys = [0.25f32, 4.0, -1.5, 2.0, 8.0, -0.125, 1e3, 0.5];
    // Reference on the host FPU with the same operation order.
    let mut expect = 0.0f32;
    for (x, y) in xs.iter().zip(&ys) {
        expect = flush(expect + flush(x * y));
    }

    let mut m = machine(Box::new(FpuKernel::recommended_unit(32)));
    let mut msgs = vec![HostMsg::WriteReg {
        reg: 3, // accumulator = 0.0
        value: Word::from_u64(0, 32),
    }];
    for (x, y) in xs.iter().zip(&ys) {
        msgs.push(HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(x.to_bits() as u64, 32),
        });
        msgs.push(HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(y.to_bits() as u64, 32),
        });
        msgs.push(fpu_instr(ops::FMUL, 4, 1, 2)); // r4 = x * y
        msgs.push(fpu_instr(ops::FADD, 3, 3, 4)); // acc += r4
    }
    msgs.push(HostMsg::ReadReg { reg: 3, tag: 0 });
    let out = m.run_messages(&msgs, 1_000_000).unwrap();
    let got = match &out[..] {
        [fu_isa::DevMsg::Data { value, .. }] => f32::from_bits(value.as_u64() as u32),
        other => panic!("unexpected responses {other:?}"),
    };
    assert_eq!(
        got.to_bits(),
        expect.to_bits(),
        "got {got}, expected {expect}"
    );
}

#[test]
fn fcmp_drives_flags() {
    let mut m = machine(Box::new(MinimalFu::new(FpuKernel::new(32), false)));
    let msgs = vec![
        HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64((-1.5f32).to_bits() as u64, 32),
        },
        HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(2.5f32.to_bits() as u64, 32),
        },
        fpu_instr(ops::FCMP, 0, 1, 2),
        HostMsg::ReadFlags { reg: 1, tag: 0 },
    ];
    let out = m.run_messages(&msgs, 100_000).unwrap();
    match &out[..] {
        [fu_isa::DevMsg::Flags { flags, .. }] => {
            assert!(flags.carry(), "-1.5 < 2.5");
            assert!(!flags.zero());
            assert!(!flags.error(), "ordered comparison");
        }
        other => panic!("unexpected responses {other:?}"),
    }
}

#[test]
fn nan_raises_error_flag() {
    let mut m = machine(Box::new(MinimalFu::new(FpuKernel::new(32), false)));
    let msgs = vec![
        HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(f32::INFINITY.to_bits() as u64, 32),
        },
        HostMsg::WriteReg {
            reg: 2,
            value: Word::from_u64(f32::NEG_INFINITY.to_bits() as u64, 32),
        },
        fpu_instr(ops::FADD, 3, 1, 2), // inf - inf = NaN
        HostMsg::ReadFlags { reg: 1, tag: 0 },
        HostMsg::ReadReg { reg: 3, tag: 1 },
    ];
    let out = m.run_messages(&msgs, 100_000).unwrap();
    match &out[..] {
        [fu_isa::DevMsg::Flags { flags, .. }, fu_isa::DevMsg::Data { value, .. }] => {
            assert!(flags.error(), "NaN result raises the error flag");
            assert!(f32::from_bits(value.as_u64() as u32).is_nan());
        }
        other => panic!("unexpected responses {other:?}"),
    }
}

#[test]
fn pipelined_fpu_overlaps_independent_work() {
    // Eight independent multiplies through the 4-stage pipeline should
    // finish far faster than 8 × latency.
    let mut m = machine(Box::new(FpuKernel::recommended_unit(32)));
    let mut msgs = Vec::new();
    for i in 0..8u8 {
        msgs.push(HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64((i as f32 + 1.0).to_bits() as u64, 32),
        });
        // Distinct destinations *and* rotating flag registers: no WAW.
        msgs.push(fpu_instr_f(ops::FMUL, 8 + i, 1, 1, 1 + i % 4));
    }
    msgs.push(HostMsg::Sync { tag: 0 });
    let out = m.run_messages(&msgs, 100_000).unwrap();
    assert_eq!(out.len(), 1);
    for i in 0..8u8 {
        let sq = (i as f32 + 1.0) * (i as f32 + 1.0);
        assert_eq!(
            m.peek_reg(8 + i).as_u64() as u32,
            sq.to_bits(),
            "square of {}",
            i + 1
        );
    }
}
