//! Acceptance properties for the soft-error resilience layer: under
//! random seeds, survivable strike rates and every activity mode, a
//! protected machine (parity + redundant execution + checkpoint
//! rollback) must be indistinguishable from a fault-free one — same
//! responses, same cycle count, same link statistics, same latency
//! percentiles — and a farm whose shard panics must finish every job on
//! the healthy shards with `run_parallel` bit-identical to `run_serial`.

mod util;

use fu_host::{Farm, FarmConfig, Job, JobOutput, LinkModel, System};
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::{LatencyFu, PoisonFu};
use fu_rtm::{ActivityMode, CoprocConfig, FunctionalUnit, Redundancy, SeuConfig};
use proptest::prelude::*;

const MODES: [ActivityMode; 3] = [
    ActivityMode::Gated,
    ActivityMode::Exhaustive,
    ActivityMode::Scheduled,
];

fn dependent_add() -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: 1,
        variety: 0,
        dst_flag: 1,
        dst_reg: 2,
        aux_reg: 0,
        src1: 2,
        src2: 1,
        src3: 0,
    }))
}

/// Everything an application could observe about a finished run.
#[derive(Debug, PartialEq)]
struct Observation {
    responses: Vec<DevMsg>,
    cycles: u64,
    link: fu_host::LinkStats,
    latency: rtl_sim::LatencySnapshot,
}

/// Run the dependent-add workload on a protected machine and capture
/// every application-visible observable.
fn protected_run(
    redundancy: Redundancy,
    seu: Option<SeuConfig>,
    ckpt_interval: u64,
    mode: ActivityMode,
    n_adds: usize,
) -> Observation {
    let mut cfg = CoprocConfig::default()
        .with_parity()
        .with_redundancy(redundancy);
    if let Some(seu) = seu {
        cfg = cfg.with_seu(seu);
    }
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 3))];
    let mut sys = System::new(cfg, units, LinkModel::pcie_like()).expect("valid config");
    sys.set_activity_mode(mode);
    sys.enable_recovery(ckpt_interval)
        .expect("LatencyFu is clone-capable");

    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    });
    sys.send(&HostMsg::WriteReg {
        reg: 2,
        value: Word::from_u64(0, 32),
    });
    let mut tag = 0u16;
    for i in 0..n_adds {
        sys.send(&dependent_add());
        if i % 8 == 7 {
            sys.send(&HostMsg::ReadReg { reg: 2, tag });
            tag += 1;
        }
    }
    sys.send(&HostMsg::ReadReg { reg: 2, tag });
    sys.send(&HostMsg::Sync { tag: tag + 1 });
    util::settle(&mut sys, 40_000_000);
    Observation {
        responses: std::iter::from_fn(|| sys.recv()).collect(),
        cycles: sys.cycle(),
        link: sys.link_stats(),
        latency: sys.sim_stats().latency_snapshot(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The resilience contract: at survivable strike rates, a protected
    /// run is bit-identical to the fault-free run — responses, final
    /// cycle count (rollback rewinds the clock it replays), link stats
    /// and latency percentiles — in all three activity modes.
    #[test]
    fn protected_run_is_bit_identical_to_fault_free(
        seed in any::<u64>(),
        mean in 60u64..=600,
        ckpt in 2u64..=32,
        n in 8usize..=48,
        tmr in any::<bool>(),
    ) {
        let red = if tmr { Redundancy::Tmr } else { Redundancy::Dmr };
        let clean = protected_run(red, None, ckpt, ActivityMode::Gated, n);
        for mode in MODES {
            let faulty = protected_run(red, Some(SeuConfig::all(seed, mean)), ckpt, mode, n);
            prop_assert_eq!(
                &clean, &faulty,
                "protected {:?} run diverged from fault-free (seed {:#x}, mean {})",
                mode, seed, mean
            );
        }
    }
}

/// Jobs whose arithmetic trips the poison trigger on the armed shard.
fn poison_jobs(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::Requests(vec![
                HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(0xDEAD, 32),
                },
                HostMsg::Instr(InstrWord::user(UserInstr {
                    func: 1,
                    variety: 0,
                    dst_flag: 1,
                    dst_reg: 3,
                    aux_reg: 0,
                    src1: 1,
                    src2: 1,
                    src3: 0,
                })),
                HostMsg::ReadReg {
                    reg: 3,
                    tag: i as u16,
                },
            ])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shard failover extends the farm determinism property: with one
    /// shard armed to panic mid-job, every job still completes (retried
    /// on a healthy shard), the parallel run is bit-identical to the
    /// serial one, and the failover accounting matches the number of
    /// jobs that were homed on the poisoned shard.
    #[test]
    fn poisoned_shard_jobs_complete_on_healthy_shards(
        shards in 2usize..=5,
        poison_pick in 0usize..=4,
        n_jobs in 4usize..=16,
        mode_idx in 0usize..3,
    ) {
        let poison = poison_pick % shards;
        let cfg = FarmConfig {
            shards,
            max_job_retries: 2,
            activity_mode: MODES[mode_idx],
            ..FarmConfig::default()
        };
        let build = move |ctx: &fu_host::ShardCtx| {
            let trigger = (ctx.index == poison).then_some(0xDEAD);
            System::new(
                CoprocConfig::default(),
                vec![Box::new(PoisonFu::new("poison", 1, 1, trigger)) as Box<dyn FunctionalUnit>],
                LinkModel::ideal(),
            )
        };
        let jobs = poison_jobs(n_jobs);

        let mut farm = Farm::new(cfg, build);
        let serial = farm.run_serial(&jobs).expect("serial run");
        let serial_stats = farm.sim_stats();
        let parallel = farm.run_parallel(&jobs).expect("parallel run");
        let parallel_stats = farm.sim_stats();

        prop_assert_eq!(&serial, &parallel, "failover broke serial/parallel identity");
        prop_assert_eq!(
            serial_stats.recovery.jobs_failed_over,
            parallel_stats.recovery.jobs_failed_over
        );

        let homed_on_poison = (0..n_jobs).filter(|j| j % shards == poison).count() as u64;
        prop_assert_eq!(serial_stats.recovery.jobs_failed_over, homed_on_poison);
        for r in &serial {
            let out = r.output.as_ref().expect("every job completes after failover");
            prop_assert_eq!(
                out,
                &JobOutput::Msgs(vec![DevMsg::Data {
                    tag: r.job as u16,
                    value: Word::from_u64(2 * 0xDEAD, 32),
                }]),
                "job {} produced the wrong answer", r.job
            );
            if r.job % shards == poison {
                prop_assert_ne!(r.shard, poison, "retry landed back on the poisoned shard");
            }
        }
    }
}
