//! Out-of-order execution tests (paper §II):
//!
//! > "Within the FPGA, the instructions may be executed out of order, but
//! > the stream of results returned to the processor will be consistent
//! > with the stream of instructions that were issued."
//!
//! A slow and a fast `LatencyFu` make internal completion reordering
//! deterministic; these tests verify (a) that reordering really happens,
//! (b) that architectural state and the response stream never betray it,
//! and (c) that it buys throughput over a serialising barrier.

mod util;

use fu_host::{LinkModel, System};
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};

fn add_on(func: u8, dst: u8, s1: u8, s2: u8, flag: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func,
        variety: 0,
        dst_flag: flag,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    }))
}

fn two_unit_system(slow_latency: u32) -> System {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(LatencyFu::new("slow", 1, slow_latency)),
        Box::new(LatencyFu::new("fast", 2, 1)),
    ];
    System::new(CoprocConfig::default(), units, LinkModel::ideal()).unwrap()
}

#[test]
fn completions_reorder_but_responses_do_not() {
    let mut sys = two_unit_system(40);
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(5, 32),
    });
    // slow: r2 = 10 (flag f1); fast: r3 = 10 (flag f2); issued slow first.
    sys.send(&add_on(1, 2, 1, 1, 1));
    sys.send(&add_on(2, 3, 1, 1, 2));
    // Read r3 first, then r2 — both responses must arrive in *request*
    // order even though r2's producer finishes long after r3's.
    sys.send(&HostMsg::ReadReg { reg: 3, tag: 0 });
    sys.send(&HostMsg::ReadReg { reg: 2, tag: 1 });
    let first = sys.recv_blocking(100_000).unwrap();
    let second = sys.recv_blocking(100_000).unwrap();
    assert_eq!(
        first,
        DevMsg::Data {
            tag: 0,
            value: Word::from_u64(10, 32)
        }
    );
    assert_eq!(
        second,
        DevMsg::Data {
            tag: 1,
            value: Word::from_u64(10, 32)
        }
    );
}

/// Issue `n` alternating slow/fast instructions with and without
/// serialising FENCEs; the unfenced run exploits out-of-order completion.
/// Drives the coprocessor's frame port directly (wide port, no link
/// bottleneck) so the comparison isolates the machine's behaviour.
fn run_mix(serialise: bool, n: u32) -> u64 {
    // Two units of equal latency: out-of-order dispatch overlaps them
    // fully, while fences serialise every instruction.
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(LatencyFu::new("slow", 1, 8)),
        Box::new(LatencyFu::new("fast", 2, 8)),
    ];
    let mut coproc = Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            rx_fifo_depth: 64,
            ..CoprocConfig::default()
        },
        units,
    )
    .unwrap();
    let mut msgs = vec![HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(3, 32),
    }];
    for i in 0..n {
        let (func, dst, flag) = if i % 2 == 0 {
            (1u8, 2u8, 1u8) // slow unit -> r2
        } else {
            (2u8, 3u8, 2u8) // fast unit -> r3
        };
        msgs.push(add_on(func, dst, 1, 1, flag));
        if serialise {
            msgs.push(HostMsg::Instr(fu_isa::MgmtOp::Fence.encode()));
        }
    }
    let frames = msgs.iter().flat_map(|m| m.to_frames(32));
    util::feed_frames_until_idle(&mut coproc, frames, 10_000_000)
}

#[test]
fn out_of_order_beats_fenced_execution() {
    let n = 64;
    let ooo = run_mix(false, n);
    let fenced = run_mix(true, n);
    assert!(
        fenced as f64 > ooo as f64 * 1.4,
        "overlapping two equal-latency units should clearly beat fenced \
         execution: ooo={ooo}, fenced={fenced}"
    );
}

#[test]
fn fast_instructions_complete_while_slow_in_flight() {
    // Direct evidence of reordering: the fast unit's completion is
    // retired by the arbiter while the slow unit still works.
    let units: Vec<Box<dyn FunctionalUnit>> = vec![
        Box::new(LatencyFu::new("slow", 1, 50)),
        Box::new(LatencyFu::new("fast", 2, 1)),
    ];
    let mut coproc = Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            ..CoprocConfig::default()
        },
        units,
    )
    .unwrap();
    let msgs = vec![
        HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(2, 32),
        },
        add_on(1, 2, 1, 1, 1), // slow
        add_on(2, 3, 1, 1, 2), // fast
    ];
    for m in &msgs {
        for f in m.to_frames(32) {
            assert!(coproc.push_frame(f));
        }
    }
    let mut fast_done_at = None;
    let mut slow_done_at = None;
    for _ in 0..200 {
        coproc.step();
        let s = coproc.stats();
        if s.fu_completions >= 1 && fast_done_at.is_none() {
            fast_done_at = Some(coproc.cycle());
        }
        if s.fu_completions == 2 && slow_done_at.is_none() {
            slow_done_at = Some(coproc.cycle());
        }
    }
    let (fast, slow) = (fast_done_at.unwrap(), slow_done_at.unwrap());
    assert!(
        slow >= fast + 40,
        "slow ({slow}) must retire long after fast ({fast}) despite issuing first"
    );
    assert_eq!(coproc.peek_reg(2).as_u64(), 4);
    assert_eq!(coproc.peek_reg(3).as_u64(), 4);
}

#[test]
fn dependent_instruction_waits_for_slow_producer() {
    // fast unit consumes the slow unit's result: the RAW interlock must
    // hold it back, and the final value must reflect the full chain.
    let mut sys = two_unit_system(30);
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(7, 32),
    });
    sys.send(&add_on(1, 2, 1, 1, 1)); // slow: r2 = 14
    sys.send(&add_on(2, 3, 2, 2, 2)); // fast, depends on r2: r3 = 28
    sys.send(&HostMsg::ReadReg { reg: 3, tag: 0 });
    let resp = sys.recv_blocking(100_000).unwrap();
    assert_eq!(
        resp,
        DevMsg::Data {
            tag: 0,
            value: Word::from_u64(28, 32)
        }
    );
    assert!(sys.coproc().stats().dispatch.stall_lock >= 25);
}

#[test]
fn waw_to_same_register_is_ordered() {
    let mut sys = two_unit_system(35);
    sys.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(1, 32),
    });
    sys.send(&HostMsg::WriteReg {
        reg: 4,
        value: Word::from_u64(100, 32),
    });
    sys.send(&add_on(1, 5, 1, 1, 1)); // slow: r5 = 2
    sys.send(&add_on(2, 5, 4, 4, 2)); // fast: r5 = 200, must land second
    sys.send(&HostMsg::ReadReg { reg: 5, tag: 0 });
    let resp = sys.recv_blocking(100_000).unwrap();
    assert_eq!(
        resp,
        DevMsg::Data {
            tag: 0,
            value: Word::from_u64(200, 32)
        }
    );
}
