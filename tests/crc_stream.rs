//! CRC-32 streaming through the full machine: the running value chains
//! through an ordinary data register, so the framework's interlocks — not
//! unit-local state — carry the dependency from word to word. Uses the
//! `Coprocessor::run_messages` harness directly (no link model).

use fu_isa::{HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::{CoprocConfig, Coprocessor, FunctionalUnit};
use fu_units::crc::{self, CrcKernel};
use fu_units::{MinimalFu, PipelinedFu};

fn crc_instr(variety: u8, dst: u8, data_reg: u8, running_reg: u8) -> HostMsg {
    HostMsg::Instr(InstrWord::user(UserInstr {
        func: crc::CRC_FUNC_CODE,
        variety,
        dst_flag: 1,
        dst_reg: dst,
        aux_reg: 0,
        src1: data_reg,
        src2: running_reg,
        src3: 0,
    }))
}

fn stream_crc(unit: Box<dyn FunctionalUnit>, message: &[u8]) -> u32 {
    assert!(message.len().is_multiple_of(4));
    let mut coproc = Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            rx_fifo_depth: 64,
            ..CoprocConfig::default()
        },
        vec![unit],
    )
    .unwrap();
    let words: Vec<u32> = message
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let mut msgs = Vec::new();
    // The running CRC lives in r2; each step loads the next data word
    // into r1 and updates r2 in place (RAW + WAW interlocks on r2).
    for (i, &w) in words.iter().enumerate() {
        msgs.push(HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(w as u64, 32),
        });
        let mut variety = 0;
        if i == 0 {
            variety |= crc::CRC_INIT;
        }
        if i == words.len() - 1 {
            variety |= crc::CRC_FINALIZE;
        }
        msgs.push(crc_instr(variety, 2, 1, 2));
    }
    msgs.push(HostMsg::ReadReg { reg: 2, tag: 0 });
    let out = coproc.run_messages(&msgs, 1_000_000).unwrap();
    match &out[..] {
        [fu_isa::DevMsg::Data { value, .. }] => value.as_u64() as u32,
        other => panic!("unexpected responses: {other:?}"),
    }
}

#[test]
fn streamed_crc_matches_reference_minimal_unit() {
    let message = b"The quick brown fox jumps over the lazy dog!....";
    let got = stream_crc(Box::new(MinimalFu::new(CrcKernel::new(32), false)), message);
    assert_eq!(got, crc::crc32(message));
}

#[test]
fn streamed_crc_matches_reference_pipelined_unit() {
    // Through the pipelined skeleton the chain *must* serialise on the
    // register interlocks (each update reads the previous result); the
    // answer stays exact.
    let message = b"0123456789abcdef0123456789abcdef";
    let got = stream_crc(
        Box::new(PipelinedFu::new(CrcKernel::new(32), 3, 8)),
        message,
    );
    assert_eq!(got, crc::crc32(message));
}

#[test]
fn known_check_value_through_hardware() {
    // crc32("123456789...") padded to a word multiple; verify the
    // canonical vector on the unpadded prefix by doing it in software
    // too (the test's real assertion is hw == sw on identical input).
    let message = b"123456789abc";
    let got = stream_crc(Box::new(MinimalFu::new(CrcKernel::new(32), true)), message);
    assert_eq!(got, crc::crc32(message));
}

#[test]
fn long_message_throughput_counts() {
    let message: Vec<u8> = (0..4096u32).map(|i| (i * 31 + 7) as u8).collect();
    let mut coproc = Coprocessor::new(
        CoprocConfig {
            rx_frames_per_cycle: 8,
            rx_fifo_depth: 64,
            ..CoprocConfig::default()
        },
        vec![Box::new(MinimalFu::new(CrcKernel::new(32), false))],
    )
    .unwrap();
    let words: Vec<u32> = message
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let mut msgs = Vec::new();
    for (i, &w) in words.iter().enumerate() {
        msgs.push(HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(w as u64, 32),
        });
        let mut variety = 0;
        if i == 0 {
            variety |= crc::CRC_INIT;
        }
        if i == words.len() - 1 {
            variety |= crc::CRC_FINALIZE;
        }
        msgs.push(crc_instr(variety, 2, 1, 2));
    }
    msgs.push(HostMsg::ReadReg { reg: 2, tag: 0 });
    let out = coproc.run_messages(&msgs, 10_000_000).unwrap();
    assert_eq!(out.len(), 1);
    let stats = coproc.stats();
    assert_eq!(stats.dispatch.user_dispatched, words.len() as u64);
    // The dependent chain runs at a handful of cycles per word — far from
    // the ~32 single-bit software steps the paper's motivation cites.
    let cpw = coproc.cycle() as f64 / words.len() as f64;
    assert!(cpw < 8.0, "cycles per word too high: {cpw}");
}
