//! The non-perturbation harness for the observability layer: enabling
//! the typed event trace must not change *anything* the simulation
//! computes — not the response streams, not the per-shard cycle counts,
//! not the scheduler statistics (which include the always-on latency
//! histograms and busy counters). Tracing observes the machine; it never
//! steers it.
//!
//! The property is checked over random programs, shard counts, batch
//! sizes and all three activity-scheduling modes, because a perturbation bug
//! would most likely hide in an interaction (e.g. a trace-gated branch
//! that also feeds the gating predicate of a stage).

use bench::throughput::arith_jobs;
use fu_host::{Farm, FarmConfig, Job, JobResult, LinkModel};
use fu_rtm::{ActivityMode, CoprocConfig};
use proptest::prelude::*;
use rtl_sim::SimStats;

/// Run `jobs` on a fresh farm and return everything observable:
/// per-job results, the rolled-up scheduler statistics, and per-shard
/// cycle counts.
fn observe(
    jobs: &[Job],
    shards: usize,
    seed: u64,
    mode: ActivityMode,
    trace_depth: usize,
) -> (Vec<JobResult>, SimStats, Vec<u64>) {
    let mut farm = Farm::standard(
        FarmConfig {
            shards,
            seed,
            activity_mode: mode,
            trace_depth,
            ..FarmConfig::default()
        },
        CoprocConfig::default(),
        LinkModel::pcie_like(),
    );
    let results = farm.run_serial(jobs).expect("farm run");
    let cycles = farm.shard_reports().iter().map(|r| r.cycles).collect();
    (results, farm.sim_stats(), cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any workload, shard count and scheduling mode, a trace-enabled
    /// run is bit-identical to the trace-disabled run.
    #[test]
    fn tracing_never_perturbs_the_simulation(
        seed in any::<u64>(),
        shards in 1usize..=3,
        total in 4usize..24,
        batch in 1usize..8,
        mode_idx in 0usize..3,
    ) {
        let mode = match mode_idx {
            0 => ActivityMode::Gated,
            1 => ActivityMode::Exhaustive,
            _ => ActivityMode::Scheduled,
        };
        let jobs = arith_jobs(total, batch, seed);
        let (plain_res, plain_sim, plain_cycles) = observe(&jobs, shards, seed, mode, 0);
        let (traced_res, traced_sim, traced_cycles) =
            observe(&jobs, shards, seed, mode, 4096);

        prop_assert_eq!(
            &plain_res, &traced_res,
            "result stream diverged (seed {:#x}, {} shards, {:?})", seed, shards, mode
        );
        prop_assert_eq!(
            &plain_sim, &traced_sim,
            "SimStats diverged (seed {:#x}, {} shards, {:?})", seed, shards, mode
        );
        prop_assert_eq!(
            &plain_cycles, &traced_cycles,
            "per-shard cycles diverged (seed {:#x}, {} shards, {:?})", seed, shards, mode
        );

        // Guard against a vacuous pass: the traced run must actually have
        // retained events, and the always-on histograms must have seen
        // every instruction.
        prop_assert_eq!(traced_sim.lat_issue_retire.count(), total as u64);
        prop_assert!(plain_sim == traced_sim && traced_sim.lat_issue_retire.count() > 0);
    }
}

/// The same property through the single-`System` path (no farm), pinned
/// on one deterministic workload in every mode — a fast regression
/// tripwire that does not depend on the proptest shim's case budget.
#[test]
fn traced_system_matches_untraced_system_in_all_modes() {
    for mode in [
        ActivityMode::Gated,
        ActivityMode::Exhaustive,
        ActivityMode::Scheduled,
    ] {
        let run = |depth: usize| {
            let jobs = arith_jobs(16, 4, 7);
            observe(&jobs, 1, 7, mode, depth)
        };
        let a = run(0);
        let b = run(1 << 16);
        assert_eq!(a, b, "trace on/off diverged in {mode:?}");
    }
}
