//! The kitchen-sink test: every unit in the repository on one FPGA —
//! arithmetic, logic, shift, multiplier, divider, popcount, CRC-32, FPU,
//! histogram, PRNG, CAM and the χ-sort engine — driven by one host
//! program with interleaved dependencies. This is the paper's Figure 1
//! at full scale: "the interface framework allows several functional
//! units to be incorporated on the FPGA, and these units may have
//! different designs."

use fu_host::{Driver, LinkModel, System};
use fu_isa::{InstrWord, UserInstr};
use fu_rtm::{CoprocConfig, FunctionalUnit};
use fu_units::fpu::{self, FpuKernel};
use fu_units::stateful::{cam, histogram, prng, CamFu, HistogramFu, PrngFu};
use fu_units::{crc, CrcKernel, MinimalFu};
use xi_sort::{XiConfig, XiSortAdapter};

fn instr(func: u8, variety: u8, dst: u8, s1: u8, s2: u8, flag: u8) -> InstrWord {
    InstrWord::user(UserInstr {
        func,
        variety,
        dst_flag: flag,
        dst_reg: dst,
        aux_reg: 0,
        src1: s1,
        src2: s2,
        src3: 0,
    })
}

fn everything_machine() -> Driver {
    let mut units: Vec<Box<dyn FunctionalUnit>> = fu_units::standard_units(32);
    units.push(Box::new(MinimalFu::new(CrcKernel::new(32), false)));
    units.push(Box::new(FpuKernel::recommended_unit(32)));
    units.push(Box::new(HistogramFu::new(16, 32)));
    units.push(Box::new(PrngFu::new(32)));
    units.push(Box::new(CamFu::new(16, 32)));
    units.push(Box::new(XiSortAdapter::new(XiConfig::new(32), 32)));
    let cfg = CoprocConfig {
        data_regs: 32,
        flag_regs: 8,
        ..CoprocConfig::default()
    };
    let sys = System::new(cfg, units, LinkModel::tightly_coupled()).unwrap();
    Driver::new(sys, 100_000_000)
}

#[test]
fn twelve_units_coexist() {
    let d = everything_machine();
    let coproc = d.system().coproc();
    assert_eq!(coproc.futable().len(), 12);
    // Every unit is addressable and the table is collision-free by
    // construction; the area report covers the whole complement.
    let area = coproc.area();
    assert!(area.components() > 10_000, "a full FPGA's worth of units");
}

#[test]
fn interleaved_cross_unit_program() {
    let mut d = everything_machine();

    // Stage 1: integer pipeline — (1000 - 58) * 3, quotient by 7.
    d.write_reg(1, 1000);
    d.write_reg(2, 58);
    d.write_reg(3, 3);
    d.write_reg(4, 7);
    d.exec_program(
        "SUB r5, r1, r2, f1
         MUL r6, r7, r5, r3
         DIV r8, r9, r6, r4",
    )
    .unwrap();

    // Stage 2 (interleaved): χ-sort three values while the PRNG streams
    // into the histogram.
    d.xi_load(&[300, 100, 200], 10).unwrap();
    d.write_reg(12, 0xABCD);
    d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_SEED, 0, 12, 0, 2));
    d.exec(instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_CLEAR,
        0,
        0,
        0,
        2,
    ));
    d.write_reg(13, 1);
    for _ in 0..10 {
        d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_NEXT, 14, 0, 0, 2));
        d.exec(instr(
            histogram::HIST_FUNC_CODE,
            histogram::HIST_ACCUM,
            0,
            14,
            13,
            2,
        ));
    }
    d.xi_sort(11).unwrap();

    // Stage 3: float work on the integer results — f32(quotient) via a
    // host-side conversion, then FPU math.
    let quotient = d.read_reg(8).unwrap().as_u64();
    assert_eq!(quotient, (1000 - 58) * 3 / 7);
    let remainder = d.read_reg(9).unwrap().as_u64();
    assert_eq!(remainder, (1000 - 58) * 3 % 7);
    d.write_reg(15, (quotient as f32).to_bits() as u64);
    d.write_reg(16, 0.5f32.to_bits() as u64);
    d.exec(instr(fpu::FPU_FUNC_CODE, fpu::ops::FMUL, 17, 15, 16, 3));
    let half = f32::from_bits(d.read_reg(17).unwrap().as_u64() as u32);
    assert_eq!(half, quotient as f32 * 0.5);

    // Stage 4: CRC the sorted χ-sort output and memoise it in the CAM.
    let sorted = d.xi_read_sorted(3, 10, 11).unwrap();
    assert_eq!(sorted, vec![100, 200, 300]);
    let mut variety = crc::CRC_INIT;
    for (i, &v) in sorted.iter().enumerate() {
        if i == sorted.len() - 1 {
            variety |= crc::CRC_FINALIZE;
        }
        d.write_reg(18, v as u64);
        d.exec(instr(crc::CRC_FUNC_CODE, variety, 19, 18, 19, 4));
        variety = 0;
    }
    let hw_crc = d.read_reg(19).unwrap().as_u64() as u32;
    let bytes: Vec<u8> = sorted.iter().flat_map(|v| v.to_le_bytes()).collect();
    assert_eq!(hw_crc, crc::crc32(&bytes), "CRC of the sorted stream");

    d.write_reg(20, 0x5051);
    d.exec(instr(cam::CAM_FUNC_CODE, cam::CAM_WRITE, 0, 20, 19, 5));
    d.exec(instr(cam::CAM_FUNC_CODE, cam::CAM_SEARCH, 21, 20, 0, 5));
    assert_eq!(d.read_reg(21).unwrap().as_u64() as u32, hw_crc);
    assert!(d.read_flags(5).unwrap().carry(), "CAM hit");

    // Histogram total: all ten PRNG draws landed.
    d.exec(instr(
        histogram::HIST_FUNC_CODE,
        histogram::HIST_TOTAL,
        22,
        0,
        0,
        2,
    ));
    assert_eq!(d.read_reg(22).unwrap().as_u64(), 10);

    d.sync().unwrap();
    let stats = d.system().coproc().stats();
    assert_eq!(stats.decode_errors, 0, "no errors across the whole program");
    assert!(stats.dispatch.user_dispatched >= 30);
}

#[test]
fn popcount_and_logic_close_the_loop() {
    // One more cross-unit loop: XOR two PRNG draws, popcount the result,
    // and branch the host on the flags.
    let mut d = everything_machine();
    d.write_reg(1, 424242);
    d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_SEED, 0, 1, 0, 1));
    d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_NEXT, 2, 0, 0, 1));
    d.exec(instr(prng::PRNG_FUNC_CODE, prng::PRNG_NEXT, 3, 0, 0, 1));
    d.exec_program(
        "XOR r4, r2, r3, f2
         POPCNT r5, r4, f3",
    )
    .unwrap();
    let a = d.read_reg(2).unwrap().as_u64() as u32;
    let b = d.read_reg(3).unwrap().as_u64() as u32;
    let pc = d.read_reg(5).unwrap().as_u64();
    assert_eq!(pc, (a ^ b).count_ones() as u64);
    assert_eq!(d.read_flags(3).unwrap().zero(), a == b);
}
