//! The correctness contract of the event-wheel scheduling kernel:
//! `ActivityMode::Scheduled` is an *optimisation*, never a semantic
//! change. For any workload, shard count, link fault model and seed, a
//! scheduled run must be bit-identical to both the gated and the
//! exhaustive run in everything the simulation computes — response
//! streams, per-shard cycle counts, pipeline statistics, latency
//! histograms, link statistics and retained trace events.
//!
//! The only permitted differences are the *work* counters that describe
//! how the simulator spent its time (`cycles_stepped`,
//! `cycles_skipped`, `stage_evals`, and the wheel counters themselves);
//! those are exactly what the optimisation exists to reduce, so the
//! harness additionally checks the scheduled run never steps more
//! cycles than the gated run it shadows.

use bench::throughput::{arith_jobs, xi_jobs};
use fu_host::{Farm, FarmConfig, FaultModel, Job, JobResult, LinkModel, LinkStats};
use fu_rtm::{ActivityMode, CoprocConfig};
use proptest::prelude::*;
use rtl_sim::{LatencyHistogram, SimStats, TraceEvent};

/// Everything a mode change must leave untouched, plus (separately) the
/// rolled-up scheduler statistics so the caller can compare the
/// mode-independent slices and inspect the work counters.
struct Observed {
    serial: Vec<JobResult>,
    parallel: Vec<JobResult>,
    shard_cycles: Vec<u64>,
    traces: Vec<Vec<TraceEvent>>,
    link: LinkStats,
    sim: SimStats,
}

/// The mode-independent projection of [`SimStats`]: total simulated
/// time, stage busy-ness and the always-on latency histograms. The
/// stepped/skipped/eval/wheel counters are deliberately excluded — they
/// describe simulator effort, not machine behaviour.
fn invariant_slice(s: &SimStats) -> (u64, &Vec<(&'static str, u64)>, [&LatencyHistogram; 3]) {
    (
        s.cycles_simulated,
        &s.stage_busy,
        [
            &s.lat_issue_dispatch,
            &s.lat_dispatch_retire,
            &s.lat_issue_retire,
        ],
    )
}

fn observe(
    jobs: &[Job],
    shards: usize,
    seed: u64,
    mode: ActivityMode,
    faults: Option<FaultModel>,
) -> Observed {
    let build = || {
        Farm::standard_reliable(
            FarmConfig {
                shards,
                seed,
                activity_mode: mode,
                trace_depth: 2048,
                ..FarmConfig::default()
            },
            CoprocConfig::default(),
            LinkModel::pcie_like(),
            faults,
        )
    };
    let mut farm = build();
    let serial = farm.run_serial(jobs).expect("serial farm run");
    let mut pfarm = build();
    let parallel = pfarm.run_parallel(jobs).expect("parallel farm run");
    Observed {
        serial,
        parallel,
        shard_cycles: farm.shard_reports().iter().map(|r| r.cycles).collect(),
        traces: farm
            .shard_reports()
            .iter()
            .map(|r| r.trace.clone())
            .collect(),
        link: farm.link_stats(),
        sim: farm.sim_stats(),
    }
}

/// Assert `got` (an alternative mode) matches `base` (the gated
/// reference) on every mode-independent observable.
fn assert_equivalent(base: &Observed, got: &Observed, label: &str) {
    assert_eq!(base.serial, got.serial, "{label}: job results diverged");
    assert_eq!(
        got.serial, got.parallel,
        "{label}: serial/parallel merge diverged"
    );
    assert_eq!(
        base.shard_cycles, got.shard_cycles,
        "{label}: per-shard cycle counts diverged"
    );
    assert_eq!(base.link, got.link, "{label}: link statistics diverged");
    assert_eq!(
        invariant_slice(&base.sim),
        invariant_slice(&got.sim),
        "{label}: mode-independent SimStats diverged"
    );
    assert_eq!(base.traces, got.traces, "{label}: trace streams diverged");
}

fn fault_model(choice: u64, seed: u64) -> Option<FaultModel> {
    match choice {
        0 => None,
        1 => Some(FaultModel::uniform(seed, 80)),
        _ => Some(FaultModel::uniform(seed ^ 0xDEAD, 160)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Scheduled ≡ Gated ≡ Exhaustive over random programs, shard
    /// counts, batch sizes and fault models.
    #[test]
    fn scheduled_mode_is_bit_identical_to_gated_and_exhaustive(
        seed in any::<u64>(),
        shards in 1usize..=3,
        total in 3usize..14,
        batch in 1usize..5,
        kind in 0usize..3,
        fault in 0u64..3,
    ) {
        let jobs = match kind {
            0 => arith_jobs(total, batch, seed),
            1 => xi_jobs(total, batch, seed),
            _ => {
                let mut j = arith_jobs(total, batch, seed);
                j.extend(xi_jobs(total.div_ceil(2), batch, seed ^ 1));
                j
            }
        };
        let faults = fault_model(fault, seed);
        let gated = observe(&jobs, shards, seed, ActivityMode::Gated, faults);
        let exhaustive =
            observe(&jobs, shards, seed, ActivityMode::Exhaustive, faults);
        let scheduled =
            observe(&jobs, shards, seed, ActivityMode::Scheduled, faults);

        assert_equivalent(&gated, &exhaustive, "exhaustive");
        assert_equivalent(&gated, &scheduled, "scheduled");

        // The optimisation direction: the wheel may only ever *reduce*
        // the number of cycles run through the full evaluate/commit
        // loop relative to idle-gating.
        prop_assert!(
            scheduled.sim.cycles_stepped <= gated.sim.cycles_stepped,
            "scheduled stepped more than gated: {} vs {} (seed {:#x})",
            scheduled.sim.cycles_stepped,
            gated.sim.cycles_stepped,
            seed
        );
        // Non-vacuity: the workloads are link-bound enough that some
        // fast-forwarding must actually have happened.
        prop_assert!(scheduled.sim.cycles_skipped > 0);
    }
}

/// Deterministic tripwire that does not depend on the proptest case
/// budget: a mixed arithmetic + χ-sort workload, with and without link
/// faults, across one and three shards.
#[test]
fn pinned_mixed_workload_agrees_in_all_modes() {
    let mut jobs = arith_jobs(8, 3, 0x17);
    jobs.extend(xi_jobs(4, 2, 0x18));
    for shards in [1usize, 3] {
        for fault in [None, Some(FaultModel::uniform(7, 96))] {
            let gated = observe(&jobs, shards, 0x17, ActivityMode::Gated, fault);
            let scheduled = observe(&jobs, shards, 0x17, ActivityMode::Scheduled, fault);
            let exhaustive = observe(&jobs, shards, 0x17, ActivityMode::Exhaustive, fault);
            assert_equivalent(&gated, &exhaustive, "exhaustive (pinned)");
            assert_equivalent(&gated, &scheduled, "scheduled (pinned)");
            assert!(scheduled.sim.wheel.wakes_scheduled() > 0);
        }
    }
}
