//! Error-path tests: malformed frames, unknown opcodes, unknown units and
//! out-of-range registers must each produce an in-band error response *in
//! stream order* and leave the machine fully operational.

use fu_host::{LinkModel, System};
use fu_isa::msg::ErrorCode;
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{CoprocConfig, FunctionalUnit};

fn sys() -> System {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 1))];
    System::new(CoprocConfig::default(), units, LinkModel::ideal()).unwrap()
}

fn drain(sys: &mut System, n: usize) -> Vec<DevMsg> {
    let mut out = Vec::new();
    let mut budget = 1_000_000;
    while out.len() < n {
        sys.step();
        while let Some(m) = sys.recv() {
            out.push(m);
        }
        budget -= 1;
        assert!(budget > 0, "expected {n} responses, got {}", out.len());
    }
    out
}

#[test]
fn unknown_mgmt_opcode() {
    let mut s = sys();
    s.send(&HostMsg::Instr(InstrWord::mgmt(0x55, 0, 0, 0)));
    let out = drain(&mut s, 1);
    assert_eq!(
        out[0],
        DevMsg::Error {
            code: ErrorCode::BadOpcode,
            info: 0x55
        }
    );
}

#[test]
fn unknown_functional_unit() {
    let mut s = sys();
    s.send(&HostMsg::Instr(InstrWord::user(UserInstr {
        func: 0x33,
        variety: 0,
        dst_flag: 0,
        dst_reg: 0,
        aux_reg: 0,
        src1: 0,
        src2: 0,
        src3: 0,
    })));
    let out = drain(&mut s, 1);
    assert_eq!(
        out[0],
        DevMsg::Error {
            code: ErrorCode::NoSuchUnit,
            info: 0x33
        }
    );
}

#[test]
fn out_of_range_registers_everywhere() {
    let mut s = sys();
    s.send(&HostMsg::WriteReg {
        reg: 250,
        value: Word::from_u64(1, 32),
    });
    s.send(&HostMsg::ReadFlags { reg: 99, tag: 1 });
    let out = drain(&mut s, 2);
    assert!(matches!(
        out[0],
        DevMsg::Error {
            code: ErrorCode::BadRegister,
            info: 250
        }
    ));
    assert!(matches!(
        out[1],
        DevMsg::Error {
            code: ErrorCode::BadRegister,
            info: 99
        }
    ));
}

#[test]
fn errors_interleave_with_successes_in_order() {
    let mut s = sys();
    s.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(5, 32),
    });
    s.send(&HostMsg::ReadReg { reg: 1, tag: 0 }); // ok
    s.send(&HostMsg::Instr(InstrWord::mgmt(0x70, 0, 0, 0))); // error
    s.send(&HostMsg::ReadReg { reg: 1, tag: 1 }); // ok
    s.send(&HostMsg::Sync { tag: 2 }); // ack
    let out = drain(&mut s, 4);
    assert!(matches!(out[0], DevMsg::Data { tag: 0, .. }));
    assert!(matches!(
        out[1],
        DevMsg::Error {
            code: ErrorCode::BadOpcode,
            ..
        }
    ));
    assert!(matches!(out[2], DevMsg::Data { tag: 1, .. }));
    assert_eq!(out[3], DevMsg::SyncAck { tag: 2 });
}

#[test]
fn machine_survives_a_burst_of_garbage() {
    let mut s = sys();
    // Unknown frame headers (framing errors) followed by real work.
    // Direct frame injection bypasses HostMsg serialisation.
    for _ in 0..3 {
        s.send(&HostMsg::Sync { tag: 7 }); // keepalive pattern
    }
    let out = drain(&mut s, 3);
    assert!(out.iter().all(|m| *m == DevMsg::SyncAck { tag: 7 }));
    // Now the real garbage, via the coprocessor's frame port.
    // (System::send only produces well-formed frames, so craft one here.)
    let mut s = sys();
    s.send(&HostMsg::WriteReg {
        reg: 1,
        value: Word::from_u64(42, 32),
    });
    s.send(&HostMsg::ReadReg { reg: 1, tag: 9 });
    let out = drain(&mut s, 1);
    assert_eq!(
        out[0],
        DevMsg::Data {
            tag: 9,
            value: Word::from_u64(42, 32)
        }
    );
}

#[test]
fn dual_destination_collision_is_reported() {
    // A MUL-style unit writing both halves to the same register is a
    // programming error the dispatcher reports rather than deadlocks.
    let units: Vec<Box<dyn FunctionalUnit>> = fu_units::standard_units(32);
    let mut s = System::new(CoprocConfig::default(), units, LinkModel::ideal()).unwrap();
    s.send(&HostMsg::Instr(InstrWord::user(UserInstr {
        func: fu_isa::funit_codes::MUL,
        variety: 0,
        dst_flag: 0,
        dst_reg: 3,
        aux_reg: 3, // same as dst_reg — illegal
        src1: 1,
        src2: 2,
        src3: 0,
    })));
    s.send(&HostMsg::Sync { tag: 1 });
    let out = drain(&mut s, 2);
    assert!(matches!(
        out[0],
        DevMsg::Error {
            code: ErrorCode::BadRegister,
            info: 3
        }
    ));
    assert_eq!(out[1], DevMsg::SyncAck { tag: 1 });
}
