//! Error-path tests: malformed frames, unknown opcodes, unknown units and
//! out-of-range registers must each produce an in-band error response *in
//! stream order* and leave the machine fully operational.
//!
//! Every case runs under both scheduler activity modes and asserts the
//! response streams are bit-identical: error handling is architectural
//! behaviour, and the activity gating is a pure simulation optimisation
//! that must never show through — least of all on the weird paths.

mod util;

use fu_host::{LinkModel, System};
use fu_isa::msg::ErrorCode;
use fu_isa::{DevMsg, HostMsg, InstrWord, UserInstr, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{ActivityMode, CoprocConfig, FunctionalUnit};

fn sys() -> System {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 1))];
    System::new(CoprocConfig::default(), units, LinkModel::ideal()).unwrap()
}

/// Run `msgs` to `n` responses under both activity modes, assert the two
/// response streams are identical, and return one of them.
fn run_both_modes(mk: impl Fn() -> System, msgs: &[HostMsg], n: usize) -> Vec<DevMsg> {
    let mut first: Option<Vec<DevMsg>> = None;
    for mode in [ActivityMode::Gated, ActivityMode::Exhaustive] {
        let mut s = mk();
        s.set_activity_mode(mode);
        for m in msgs {
            s.send(m);
        }
        let out = util::drain_responses(&mut s, n, 1_000_000);
        match &first {
            Some(f) => assert_eq!(
                f, &out,
                "error responses must not depend on the activity mode"
            ),
            None => first = Some(out),
        }
    }
    first.expect("both modes ran")
}

#[test]
fn unknown_mgmt_opcode() {
    let out = run_both_modes(sys, &[HostMsg::Instr(InstrWord::mgmt(0x55, 0, 0, 0))], 1);
    assert_eq!(
        out[0],
        DevMsg::Error {
            code: ErrorCode::BadOpcode,
            info: 0x55
        }
    );
}

#[test]
fn unknown_functional_unit() {
    let msgs = [HostMsg::Instr(InstrWord::user(UserInstr {
        func: 0x33,
        variety: 0,
        dst_flag: 0,
        dst_reg: 0,
        aux_reg: 0,
        src1: 0,
        src2: 0,
        src3: 0,
    }))];
    let out = run_both_modes(sys, &msgs, 1);
    assert_eq!(
        out[0],
        DevMsg::Error {
            code: ErrorCode::NoSuchUnit,
            info: 0x33
        }
    );
}

#[test]
fn out_of_range_registers_everywhere() {
    let msgs = [
        HostMsg::WriteReg {
            reg: 250,
            value: Word::from_u64(1, 32),
        },
        HostMsg::ReadFlags { reg: 99, tag: 1 },
    ];
    let out = run_both_modes(sys, &msgs, 2);
    assert!(matches!(
        out[0],
        DevMsg::Error {
            code: ErrorCode::BadRegister,
            info: 250
        }
    ));
    assert!(matches!(
        out[1],
        DevMsg::Error {
            code: ErrorCode::BadRegister,
            info: 99
        }
    ));
}

#[test]
fn errors_interleave_with_successes_in_order() {
    let msgs = [
        HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(5, 32),
        },
        HostMsg::ReadReg { reg: 1, tag: 0 },            // ok
        HostMsg::Instr(InstrWord::mgmt(0x70, 0, 0, 0)), // error
        HostMsg::ReadReg { reg: 1, tag: 1 },            // ok
        HostMsg::Sync { tag: 2 },                       // ack
    ];
    let out = run_both_modes(sys, &msgs, 4);
    assert!(matches!(out[0], DevMsg::Data { tag: 0, .. }));
    assert!(matches!(
        out[1],
        DevMsg::Error {
            code: ErrorCode::BadOpcode,
            ..
        }
    ));
    assert!(matches!(out[2], DevMsg::Data { tag: 1, .. }));
    assert_eq!(out[3], DevMsg::SyncAck { tag: 2 });
}

#[test]
fn machine_survives_a_burst_of_garbage() {
    let keepalives: Vec<HostMsg> = (0..3).map(|_| HostMsg::Sync { tag: 7 }).collect();
    let out = run_both_modes(sys, &keepalives, 3);
    assert!(out.iter().all(|m| *m == DevMsg::SyncAck { tag: 7 }));
    // Real work after the burst still completes on a fresh machine.
    let msgs = [
        HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(42, 32),
        },
        HostMsg::ReadReg { reg: 1, tag: 9 },
    ];
    let out = run_both_modes(sys, &msgs, 1);
    assert_eq!(
        out[0],
        DevMsg::Data {
            tag: 9,
            value: Word::from_u64(42, 32)
        }
    );
}

#[test]
fn dual_destination_collision_is_reported() {
    // A MUL-style unit writing both halves to the same register is a
    // programming error the dispatcher reports rather than deadlocks.
    let mk = || {
        let units: Vec<Box<dyn FunctionalUnit>> = fu_units::standard_units(32);
        System::new(CoprocConfig::default(), units, LinkModel::ideal()).unwrap()
    };
    let msgs = [
        HostMsg::Instr(InstrWord::user(UserInstr {
            func: fu_isa::funit_codes::MUL,
            variety: 0,
            dst_flag: 0,
            dst_reg: 3,
            aux_reg: 3, // same as dst_reg — illegal
            src1: 1,
            src2: 2,
            src3: 0,
        })),
        HostMsg::Sync { tag: 1 },
    ];
    let out = run_both_modes(mk, &msgs, 2);
    assert!(matches!(
        out[0],
        DevMsg::Error {
            code: ErrorCode::BadRegister,
            info: 3
        }
    ));
    assert_eq!(out[1], DevMsg::SyncAck { tag: 1 });
}
