//! Full-system χ-sort tests: host driver → link → RTM → χ-sort adapter →
//! SIMD cell array, against the software reference and `sort_unstable`.

use fu_host::baseline::workload;
use fu_host::{Driver, LinkModel, System};
use fu_rtm::CoprocConfig;
use xi_sort::reference::SoftwareXiSort;
use xi_sort::{XiConfig, XiOp, XiSortAdapter};

fn xi_driver(n_cells: u32, link: LinkModel) -> Driver {
    let sys = System::new(
        CoprocConfig::default(),
        vec![Box::new(XiSortAdapter::new(XiConfig::new(n_cells), 32))],
        link,
    )
    .unwrap();
    Driver::new(sys, 200_000_000)
}

#[test]
fn sorts_across_sizes() {
    for n in [1usize, 2, 3, 8, 33, 100] {
        let values = workload(n as u64, n, 10_000);
        let mut d = xi_driver(128, LinkModel::tightly_coupled());
        d.xi_load(&values, 1).unwrap();
        d.xi_sort(2).unwrap();
        let got = d.xi_read_sorted(n, 1, 2).unwrap();
        let mut expect = values.clone();
        expect.sort_unstable();
        assert_eq!(got, expect, "n = {n}");
    }
}

#[test]
fn sorts_with_heavy_duplicates() {
    let values = workload(5, 64, 4); // values in 0..4 — massive duplication
    let mut d = xi_driver(64, LinkModel::tightly_coupled());
    d.xi_load(&values, 1).unwrap();
    d.xi_sort(2).unwrap();
    let got = d.xi_read_sorted(64, 1, 2).unwrap();
    let mut expect = values.clone();
    expect.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn selection_across_ranks() {
    let n = 48;
    let values = workload(11, n, 1_000);
    let mut sorted = values.clone();
    sorted.sort_unstable();
    for k in [0usize, 1, n / 2, n - 1] {
        let mut d = xi_driver(64, LinkModel::tightly_coupled());
        d.xi_load(&values, 1).unwrap();
        assert_eq!(d.xi_select(k as u32, 1, 2).unwrap(), sorted[k], "k = {k}");
    }
}

#[test]
fn hardware_rounds_match_software_reference() {
    // The hardware refines the leftmost imprecise *cell* group; the
    // software the leftmost *element* group. Loading through the shift
    // chain reverses the array, so feed the software the reversed input
    // to align pivots exactly.
    let values = workload(21, 40, 100_000);
    let mut d = xi_driver(64, LinkModel::tightly_coupled());
    d.xi_load(&values, 1).unwrap();
    let hw_rounds = d.xi_sort(2).unwrap();

    let reversed: Vec<u32> = values.iter().rev().copied().collect();
    let mut sw = SoftwareXiSort::new(&reversed);
    let sw_rounds = sw.sort() as u64;
    assert_eq!(
        hw_rounds, sw_rounds,
        "identical pivot policy must use identical round counts"
    );
}

#[test]
fn sort_works_over_the_slow_prototyping_link() {
    let values = workload(31, 12, 500);
    let mut d = xi_driver(16, LinkModel::prototyping());
    d.xi_load(&values, 1).unwrap();
    d.xi_sort(2).unwrap();
    let got = d.xi_read_sorted(12, 1, 2).unwrap();
    let mut expect = values.clone();
    expect.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn per_op_cycles_are_constant_in_n_through_the_full_stack() {
    // E6 at system level: a single SortStep instruction costs the same
    // FPGA cycles for n=8 and n=512 (combinational tree).
    let step_cycles = |n: usize| {
        let values = workload(7, n, 1 << 20);
        let mut d = xi_driver(512, LinkModel::ideal());
        d.xi_load(&values, 1).unwrap();
        d.xi_op(XiOp::SortStep, 0, 2);
        d.read_reg(2).unwrap();
        d.into_system().cycle()
    };
    // Measure the controller directly for the precise per-step count.
    let core_step = |n: u32| {
        let mut core = xi_sort::XiSortCore::new(XiConfig::new(n));
        core.dispatch(XiOp::Reset, 0);
        for v in workload(7, n as usize, 1 << 20) {
            core.dispatch(XiOp::Push, v);
        }
        core.dispatch(XiOp::InitBounds, 0);
        core.run_to_completion(10_000);
        core.dispatch(XiOp::SortStep, 0);
        core.run_to_completion(10_000);
        core.op_cycles()
    };
    assert_eq!(core_step(8), core_step(512));
    // And the full-stack cost should be dominated by load (Θ(n)), with
    // the step itself adding a fixed tail.
    let total_small = step_cycles(8);
    let total_big = step_cycles(512);
    assert!(
        total_big > total_small,
        "loading 512 elements costs more overall"
    );
}

#[test]
fn registered_tree_adapter_through_full_system() {
    // Ablation A4 at system level: the registered-tree engine is slower
    // per operation but produces identical results.
    let mk = |registered: bool| {
        let cfg = XiConfig::new(64).with_registered_tree(registered);
        let sys = System::new(
            CoprocConfig::default(),
            vec![Box::new(XiSortAdapter::new(cfg, 32))],
            LinkModel::tightly_coupled(),
        )
        .unwrap();
        Driver::new(sys, 400_000_000)
    };
    let values = workload(77, 48, 100_000);
    let mut expect = values.clone();
    expect.sort_unstable();

    let mut comb = mk(false);
    comb.xi_load(&values, 1).unwrap();
    comb.xi_sort(2).unwrap();
    assert_eq!(comb.xi_read_sorted(48, 1, 2).unwrap(), expect);
    let comb_cycles = comb.cycles();

    let mut reg = mk(true);
    reg.xi_load(&values, 1).unwrap();
    reg.xi_sort(2).unwrap();
    assert_eq!(reg.xi_read_sorted(48, 1, 2).unwrap(), expect);
    assert!(
        reg.cycles() > comb_cycles,
        "registered tree pays fold latency: {} vs {comb_cycles}",
        reg.cycles()
    );
}

#[test]
fn reset_allows_reuse() {
    let mut d = xi_driver(16, LinkModel::tightly_coupled());
    d.xi_load(&[3, 1, 2], 1).unwrap();
    d.xi_sort(2).unwrap();
    assert_eq!(d.xi_read_sorted(3, 1, 2).unwrap(), vec![1, 2, 3]);
    // Second run on the same hardware.
    d.xi_load(&[9, 9, 1, 5], 1).unwrap();
    d.xi_sort(2).unwrap();
    assert_eq!(d.xi_read_sorted(4, 1, 2).unwrap(), vec![1, 5, 9, 9]);
}

#[test]
fn overflow_reports_error_flag() {
    let mut d = xi_driver(4, LinkModel::tightly_coupled());
    d.xi_op(XiOp::Reset, 1, 0);
    for v in 0..5u32 {
        d.write_reg(1, v as u64);
        d.xi_op(XiOp::Push, 1, 0);
    }
    d.sync().unwrap();
    let flags = d.read_flags(0).unwrap();
    assert!(
        flags.error(),
        "fifth push into 4 cells must set the error flag"
    );
}
