//! Multi-host tests (paper Figure 1.1: CPU #1 … CPU #m sharing one
//! interface): response routing, message-granular arbitration, fairness
//! and isolation.

mod util;

use fu_host::{LinkModel, MultiHostSystem};
use fu_isa::{DevMsg, HostMsg, Word};
use fu_rtm::testing::LatencyFu;
use fu_rtm::{CoprocConfig, FunctionalUnit};

fn sys(n_hosts: usize) -> MultiHostSystem {
    let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 1))];
    MultiHostSystem::new(
        CoprocConfig::default(),
        units,
        LinkModel::tightly_coupled(),
        n_hosts,
    )
    .unwrap()
}

#[test]
fn responses_route_to_the_issuing_host() {
    let mut s = sys(3);
    // Each host writes its own register and reads it back.
    for host in 0..3usize {
        s.send(
            host,
            &HostMsg::WriteReg {
                reg: host as u8 + 1,
                value: Word::from_u64(100 + host as u64, 32),
            },
        );
        let tag = s.brand_tag(host, 7);
        s.send(
            host,
            &HostMsg::ReadReg {
                reg: host as u8 + 1,
                tag,
            },
        );
    }
    for host in 0..3usize {
        let resp = s.recv_blocking(host, 1_000_000).unwrap();
        assert_eq!(
            resp,
            DevMsg::Data {
                tag: s.brand_tag(host, 7),
                value: Word::from_u64(100 + host as u64, 32)
            },
            "host {host}"
        );
        assert!(s.recv(host).is_none(), "exactly one response per host");
    }
}

#[test]
fn hosts_share_architectural_state() {
    // The register file is shared (the paper's model: multiple CPUs, one
    // coprocessor): host 1 can read what host 0 wrote once ordering is
    // established with a sync.
    let mut s = sys(2);
    s.send(
        0,
        &HostMsg::WriteReg {
            reg: 5,
            value: Word::from_u64(777, 32),
        },
    );
    let sync_tag = s.brand_tag(0, 1);
    s.send(0, &HostMsg::Sync { tag: sync_tag });
    assert_eq!(
        s.recv_blocking(0, 1_000_000).unwrap(),
        DevMsg::SyncAck { tag: sync_tag }
    );
    let read_tag = s.brand_tag(1, 2);
    s.send(
        1,
        &HostMsg::ReadReg {
            reg: 5,
            tag: read_tag,
        },
    );
    assert_eq!(
        s.recv_blocking(1, 1_000_000).unwrap(),
        DevMsg::Data {
            tag: read_tag,
            value: Word::from_u64(777, 32)
        }
    );
}

#[test]
fn arbitration_is_message_granular_and_fair() {
    // Two hosts blast interleaved writes+reads; every response must be
    // intact and correctly routed (frame interleaving inside a message
    // would corrupt the stream).
    let mut s = sys(2);
    let rounds = 40u64;
    for i in 0..rounds {
        for host in 0..2usize {
            let reg = (host * 4 + (i % 4) as usize) as u8 + 1;
            s.send(
                host,
                &HostMsg::WriteReg {
                    reg,
                    value: Word::from_u64(i * 2 + host as u64, 32),
                },
            );
            s.send(
                host,
                &HostMsg::ReadReg {
                    reg,
                    tag: s.brand_tag(host, i as u16),
                },
            );
        }
    }
    for host in 0..2usize {
        for i in 0..rounds {
            let resp = s.recv_blocking(host, 5_000_000).unwrap();
            assert_eq!(
                resp,
                DevMsg::Data {
                    tag: s.brand_tag(host, i as u16),
                    value: Word::from_u64(i * 2 + host as u64, 32)
                },
                "host {host} round {i}"
            );
        }
    }
}

#[test]
fn errors_route_to_the_management_host() {
    let mut s = sys(2);
    // Host 1 sends a bad read; the error report goes to host 0 (the
    // documented management-CPU convention).
    s.send(
        1,
        &HostMsg::ReadReg {
            reg: 200,
            tag: s.brand_tag(1, 0),
        },
    );
    let resp = s.recv_blocking(0, 1_000_000).unwrap();
    assert!(matches!(resp, DevMsg::Error { .. }));
}

#[test]
fn mis_branded_tag_is_rejected_early() {
    let mut s = sys(2);
    let foreign = s.brand_tag(1, 3);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        s.send(
            0,
            &HostMsg::ReadReg {
                reg: 1,
                tag: foreign,
            },
        );
    }));
    assert!(
        result.is_err(),
        "sending host 1's tag from host 0 must panic"
    );
}

#[test]
fn single_host_degenerates_to_plain_system() {
    let mut s = sys(1);
    s.send(
        0,
        &HostMsg::WriteReg {
            reg: 1,
            value: Word::from_u64(42, 32),
        },
    );
    s.send(
        0,
        &HostMsg::ReadReg {
            reg: 1,
            tag: s.brand_tag(0, 9),
        },
    );
    let resp = s.recv_blocking(0, 1_000_000).unwrap();
    assert!(matches!(resp, DevMsg::Data { .. }));
    util::settle_multihost(&mut s, 10_000);
}

#[test]
fn zero_hosts_rejected() {
    let r = MultiHostSystem::new(CoprocConfig::default(), vec![], LinkModel::ideal(), 0);
    assert!(r.is_err());
}

#[test]
fn reliable_ports_mask_faults_per_host() {
    use fu_host::FaultModel;
    use fu_isa::transport::TransportConfig;

    let link = LinkModel::tightly_coupled();
    let tcfg = TransportConfig::for_link(link.latency_cycles, link.cycles_per_frame);
    let run = |faults: Option<FaultModel>| {
        let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("add", 1, 1))];
        let mut s =
            MultiHostSystem::new_reliable(CoprocConfig::default(), units, link, 2, tcfg, faults)
                .unwrap();
        // Each host owns one register and reads it back twice.
        let mut streams: Vec<Vec<DevMsg>> = vec![Vec::new(); 2];
        for host in 0..2usize {
            s.send(
                host,
                &HostMsg::WriteReg {
                    reg: host as u8 + 1,
                    value: Word::from_u64(500 + host as u64, 32),
                },
            );
            for t in 0..2u16 {
                s.send(
                    host,
                    &HostMsg::ReadReg {
                        reg: host as u8 + 1,
                        tag: s.brand_tag(host, t),
                    },
                );
            }
        }
        for _ in 0..20_000_000u64 {
            if s.is_idle() {
                break;
            }
            s.step();
        }
        assert!(s.is_idle(), "reliable multi-host system must drain");
        for (host, stream) in streams.iter_mut().enumerate() {
            while let Some(m) = s.recv(host) {
                stream.push(m);
            }
        }
        let stats: Vec<_> = (0..2).map(|h| s.link_stats(h)).collect();
        (streams, stats)
    };

    let (clean, _) = run(None);
    let (faulty, stats) = run(Some(FaultModel::uniform(0xBEEF, 60)));
    assert_eq!(
        clean, faulty,
        "reliable ports must hide faults from every host"
    );
    for (host, st) in stats.iter().enumerate() {
        assert!(
            st.frames_dropped + st.frames_corrupted + st.frames_duplicated > 0,
            "host {host} port saw no faults at 60 permille: {st:?}"
        );
        assert!(!st.gave_up, "host {host} port gave up: {st:?}");
    }
}

#[test]
fn activity_modes_agree_on_a_multihost_burn() {
    // Two hosts over the slow prototyping link sharing one long-latency
    // unit: host 0 runs synchronous burn round trips (the coprocessor is
    // quiet but busy for 800 cycles per instruction), host 1 interleaves
    // plain register round trips. All three scheduling modes must agree
    // on every observable; the event wheel must do strictly less
    // stepping work than gated.
    use fu_rtm::ActivityMode;
    let run = |mode: ActivityMode| {
        let units: Vec<Box<dyn FunctionalUnit>> = vec![Box::new(LatencyFu::new("burn", 1, 800))];
        let mut s =
            MultiHostSystem::new(CoprocConfig::default(), units, LinkModel::prototyping(), 2)
                .unwrap();
        s.set_activity_mode(mode);
        let mut responses = Vec::new();
        for round in 0..3u16 {
            s.send(
                0,
                &HostMsg::WriteReg {
                    reg: 1,
                    value: Word::from_u64(u64::from(round) + 1, 32),
                },
            );
            s.send(
                0,
                &HostMsg::Instr(fu_isa::InstrWord::user(fu_isa::UserInstr {
                    func: 1,
                    variety: 0,
                    dst_flag: 1,
                    dst_reg: 2,
                    aux_reg: 0,
                    src1: 1,
                    src2: 1,
                    src3: 0,
                })),
            );
            s.send(
                0,
                &HostMsg::ReadReg {
                    reg: 2,
                    tag: s.brand_tag(0, round),
                },
            );
            s.send(
                1,
                &HostMsg::WriteReg {
                    reg: 3,
                    value: Word::from_u64(u64::from(round), 32),
                },
            );
            s.send(
                1,
                &HostMsg::ReadReg {
                    reg: 3,
                    tag: s.brand_tag(1, round),
                },
            );
            responses.push(s.recv_blocking(0, 10_000_000).unwrap());
            responses.push(s.recv_blocking(1, 10_000_000).unwrap());
        }
        (responses, s.cycle(), s.sim_stats())
    };
    let g = run(ActivityMode::Gated);
    let e = run(ActivityMode::Exhaustive);
    let w = run(ActivityMode::Scheduled);
    assert_eq!(g.0, e.0, "gated vs exhaustive responses diverged");
    assert_eq!(g.0, w.0, "gated vs scheduled responses diverged");
    assert_eq!(g.1, e.1, "gated vs exhaustive cycle counts diverged");
    assert_eq!(g.1, w.1, "gated vs scheduled cycle counts diverged");
    assert_eq!(g.2.cycles_simulated, w.2.cycles_simulated);
    assert_eq!(g.2.stage_busy, w.2.stage_busy, "busy accounting diverged");
    assert!(
        w.2.cycles_stepped < g.2.cycles_stepped,
        "scheduled stepped {} vs gated {}",
        w.2.cycles_stepped,
        g.2.cycles_stepped
    );
    assert!(w.2.wheel.wakes_fired() > 0, "no wheel wakes fired");
}
